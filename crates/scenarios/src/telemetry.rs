//! Instrumented scenario runs: the glue between the registry/campaign
//! driver and the [`gcs_telemetry`] observability crate.
//!
//! Three jobs live here:
//!
//! * [`run_instrumented`] — drive one scenario × seed on either engine
//!   with a [`SharedRecorder`] attached, sampling engine-invariant gauges
//!   (global skew, pending events, dirty nodes) at every observation
//!   instant, optionally with the conformance oracle riding along so the
//!   artifact carries a margin-utilization time series;
//! * [`bench_instrumented`] — the same attachment over the *bench* drive
//!   loop (fault replay + one `run_until`, no sampling grid), so the CLI
//!   can assert instrumentation drift is exactly zero against a timed
//!   [`bench::run_one`](crate::bench::run_one) pass;
//! * the `gcs-telemetry/v1` artifact writer ([`telemetry_json`] /
//!   [`write_telemetry`]) and the raw trace writer ([`write_trace`]) —
//!   the machine-readable run log that sits next to `BENCH_engine.json`.
//!
//! The trace byte-identity contract (same scenario + seed ⇒ the same
//! JSONL bytes and FNV-1a hash from the sequential and the sharded engine
//! at every shard count) is enforced by `tests/parallel_equivalence.rs`;
//! this module only has to *feed* both engines identically, which it does
//! by sampling exclusively at quiescent instants through the
//! engine-agnostic [`Engine`] seam.

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use gcs_analysis::oracle::{ConformanceChecker, ConformanceReport, OracleConfig, OracleSampling};
use gcs_core::{Engine, SimStats};
use gcs_telemetry::{Histogram, RunTelemetry, Sample, SharedRecorder, StreamStats, TraceOutput};

use crate::error::ScenarioError;
use crate::json::Json;
use crate::spec::{Scale, ScenarioSpec};

/// The artifact format tag.
pub const TELEMETRY_FORMAT: &str = "gcs-telemetry/v1";

/// How (whether) the conformance oracle rides along on an instrumented
/// run. `Sampled` trades gradient-sweep exhaustiveness for wall-clock via
/// [`OracleSampling`] — the documented-escape-probability stratified
/// source draw — which is what makes streaming conformance affordable at
/// 10⁵ nodes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum OracleRide {
    /// No oracle: gauges and traces only.
    #[default]
    Off,
    /// Exact all-pairs oracle at every sample instant.
    Exact,
    /// Sampled-source oracle at every sample instant.
    Sampled(OracleSampling),
}

/// One fully instrumented scenario × seed run.
#[derive(Debug)]
pub struct TelemetryRun {
    /// Scenario name.
    pub scenario: String,
    /// Run seed.
    pub seed: u64,
    /// Worker thread count: 1 = sequential reference, >1 = sharded.
    pub threads: usize,
    /// Which engine ran (`"sequential"` / `"sharded"`). Deliberately NOT
    /// part of the trace itself — the trace is engine-invariant.
    pub engine: &'static str,
    /// Node count after scaling.
    pub nodes: usize,
    /// Wall-clock seconds for the drive (excludes build).
    pub wall_secs: f64,
    /// Everything the recorder accumulated (counters, histograms,
    /// samples, and the sealed trace when requested).
    pub telemetry: RunTelemetry,
    /// The engine's own deterministic counters at the end instant.
    pub stats: SimStats,
    /// `(t, global utilization, gradient utilization)` per sample instant
    /// when the conformance oracle rode along; empty otherwise.
    pub oracle_series: Vec<(f64, f64, f64)>,
    /// The oracle's finished verdict when it rode along (`None` otherwise)
    /// — the streaming-conformance result: accumulated in bounded memory
    /// during the drive, no trajectory retained.
    pub oracle_report: Option<ConformanceReport>,
    /// Bounded-memory running summary of the global-envelope utilization
    /// series (empty when the oracle was off).
    pub oracle_global: StreamStats,
    /// Bounded-memory running summary of the gradient-bound utilization
    /// series (empty when the oracle was off).
    pub oracle_gradient: StreamStats,
}

pub(crate) fn build_parallel(
    spec: &ScenarioSpec,
    seed: u64,
    threads: usize,
) -> Result<gcs_core::ParallelSimulation, ScenarioError> {
    gcs_core::ParallelSimBuilder::new(spec.builder(seed)?)
        .shards(threads)
        .build()
        .map_err(|e| ScenarioError::Invalid(format!("{}: {e}", spec.name)))
}

/// The shared drive: attach a recorder, run the scenario (sampled or
/// bench-style), detach, and package the results.
fn instrument<E: Engine>(
    sim: &mut E,
    spec: &ScenarioSpec,
    seed: u64,
    threads: usize,
    trace: bool,
    oracle: OracleRide,
    sampled: bool,
) -> TelemetryRun {
    let engine = if threads <= 1 {
        "sequential"
    } else {
        "sharded"
    };
    let nodes = sim.as_sim().node_count();
    let shared = SharedRecorder::new(trace);
    // Embed the canonical `.scn` text so a trace artifact alone suffices
    // to re-materialize the run (`gcs-scenarios replay`).
    shared.begin_run(&spec.name, seed, nodes, Some(&crate::format::write(spec)));
    sim.set_telemetry(shared.sink());

    let mut checker = match oracle {
        OracleRide::Off => None,
        OracleRide::Exact => Some(ConformanceChecker::new(sim.as_sim(), spec.sample)),
        OracleRide::Sampled(sampling) => {
            let mut cfg = OracleConfig::for_sim(sim.as_sim(), spec.sample);
            cfg.sampling = Some(sampling);
            Some(ConformanceChecker::with_config(sim.as_sim(), cfg))
        }
    };
    let mut oracle_series = Vec::new();
    let mut oracle_global = StreamStats::new();
    let mut oracle_gradient = StreamStats::new();

    let started = Instant::now();
    if sampled {
        crate::campaign::drive_sampled(sim, &spec.faults, spec.sample, spec.end_secs(), |t, s| {
            // Every gauge here is engine-invariant at a quiescent
            // instant, so sample records hash identically across
            // engines. The allocation-free gauges read replaces a full
            // clock snapshot — bit-identical values, bounded memory.
            let g = s.gauges();
            shared.on_sample(Sample {
                t,
                global_skew: g.global_skew,
                queue_depth: g.queue_depth,
                dirty_nodes: g.dirty_nodes,
                events: g.events,
            });
            if let Some(c) = checker.as_mut() {
                c.observe(s.as_sim());
                let r = c.report_so_far();
                oracle_global.observe(r.global.worst_utilization);
                oracle_gradient.observe(r.gradient.worst_utilization);
                oracle_series.push((t, r.global.worst_utilization, r.gradient.worst_utilization));
            }
        });
    } else {
        // Exactly the bench drive: fault replay, then one run to the end
        // instant — so counters can be compared to a timed bench pass.
        crate::campaign::apply_faults(sim, &spec.faults);
        sim.run_until_secs(spec.end_secs());
    }
    let wall_secs = started.elapsed().as_secs_f64();

    // Detach (flushes pending local counters), then unwrap the recorder.
    drop(sim.take_telemetry());
    let telemetry = shared.finish();

    TelemetryRun {
        scenario: spec.name.clone(),
        seed,
        threads: threads.max(1),
        engine,
        nodes,
        wall_secs,
        telemetry,
        stats: sim.as_sim().stats(),
        oracle_series,
        oracle_report: checker.map(ConformanceChecker::finish),
        oracle_global,
        oracle_gradient,
    }
}

/// Runs one scenario × seed with full instrumentation over the normal
/// observation grid (the campaign drive loop).
///
/// `threads <= 1` runs the sequential reference engine; larger values run
/// the sharded engine with that many shards. With `trace` the result
/// carries the sealed `gcs-trace/v1` JSONL log; with `conformance` the
/// paper oracle observes every sample and the result carries the margin
/// utilization series.
///
/// # Errors
///
/// Returns [`ScenarioError`] if the spec fails to validate or build.
pub fn run_instrumented(
    spec: &ScenarioSpec,
    seed: u64,
    threads: usize,
    trace: bool,
    conformance: bool,
) -> Result<TelemetryRun, ScenarioError> {
    let oracle = if conformance {
        OracleRide::Exact
    } else {
        OracleRide::Off
    };
    run_instrumented_oracle(spec, seed, threads, trace, oracle)
}

/// [`run_instrumented`] with an explicit [`OracleRide`]: the general entry
/// point the CLI uses to stream the sampled-source oracle alongside large
/// runs on either engine.
///
/// # Errors
///
/// Returns [`ScenarioError`] if the spec fails to validate or build.
pub fn run_instrumented_oracle(
    spec: &ScenarioSpec,
    seed: u64,
    threads: usize,
    trace: bool,
    oracle: OracleRide,
) -> Result<TelemetryRun, ScenarioError> {
    if threads <= 1 {
        let mut sim = spec.build(seed)?;
        Ok(instrument(
            &mut sim, spec, seed, threads, trace, oracle, true,
        ))
    } else {
        let mut sim = build_parallel(spec, seed, threads)?;
        Ok(instrument(
            &mut sim, spec, seed, threads, trace, oracle, true,
        ))
    }
}

/// Runs one scenario × seed with instrumentation over the *bench* drive
/// loop (no sampling grid, no trace): the run whose counters must match a
/// timed [`bench::run_one`](crate::bench::run_one) pass exactly, proving
/// the sink sees the run without changing it.
///
/// # Errors
///
/// Returns [`ScenarioError`] if the spec fails to validate or build.
pub fn bench_instrumented(
    spec: &ScenarioSpec,
    seed: u64,
    threads: usize,
) -> Result<TelemetryRun, ScenarioError> {
    if threads <= 1 {
        let mut sim = spec.build(seed)?;
        Ok(instrument(
            &mut sim,
            spec,
            seed,
            threads,
            false,
            OracleRide::Off,
            false,
        ))
    } else {
        let mut sim = build_parallel(spec, seed, threads)?;
        Ok(instrument(
            &mut sim,
            spec,
            seed,
            threads,
            false,
            OracleRide::Off,
            false,
        ))
    }
}

fn hist_json(h: &Histogram) -> Json {
    Json::Obj(vec![
        (
            "buckets",
            Json::Arr(
                h.counts()
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(i, &c)| {
                        Json::Arr(vec![Json::Int(Histogram::bucket_lo(i)), Json::Int(c)])
                    })
                    .collect(),
            ),
        ),
        ("total", Json::Int(h.total())),
        ("sum", Json::Int(h.sum())),
        ("max", Json::Int(h.max())),
    ])
}

fn entry_json(r: &TelemetryRun) -> Json {
    let tel = &r.telemetry;
    let mut fields = vec![
        ("scenario", Json::Str(r.scenario.clone())),
        ("seed", Json::Int(r.seed)),
        ("threads", Json::Int(r.threads as u64)),
        ("engine", Json::Str(r.engine.to_string())),
        ("nodes", Json::Int(r.nodes as u64)),
        ("wall_secs", Json::Num(r.wall_secs)),
        (
            "counters",
            Json::Obj(vec![
                ("events", Json::Int(r.stats.events)),
                ("ticks", Json::Int(r.stats.ticks)),
                ("mode_evaluations", Json::Int(r.stats.mode_evaluations)),
                ("messages_sent", Json::Int(r.stats.messages_sent)),
                ("messages_delivered", Json::Int(r.stats.messages_delivered)),
                ("messages_dropped", Json::Int(r.stats.messages_dropped)),
                ("floods", Json::Int(tel.local.floods)),
                ("deliveries", Json::Int(tel.local.deliveries)),
                ("rate_changes", Json::Int(tel.local.rate_changes)),
                ("leader_checks", Json::Int(tel.local.leader_checks)),
                ("follower_applies", Json::Int(tel.local.follower_applies)),
                ("flood_merges", Json::Int(tel.local.flood_merges)),
                ("m_jumps", Json::Int(tel.local.m_jumps)),
                ("mode_switches", Json::Int(tel.mode_switches)),
                ("edge_events", Json::Int(tel.edge_events)),
                ("faults", Json::Int(tel.faults)),
            ]),
        ),
        (
            "parallel",
            Json::Obj(vec![
                ("segments", Json::Int(tel.segments)),
                ("barrier_rounds", Json::Int(tel.barrier_rounds)),
                ("stalled_shard_rounds", Json::Int(tel.stalled_shard_rounds)),
                ("mailbox_events", Json::Int(tel.mailbox_events)),
                (
                    "per_shard_drained",
                    Json::Arr(
                        tel.per_shard_drained
                            .iter()
                            .map(|&v| Json::Int(v))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "hist",
            Json::Obj(vec![
                ("eval_per_tick", hist_json(&tel.eval_hist)),
                ("queue_depth", hist_json(&tel.queue_hist)),
            ]),
        ),
        (
            "series",
            Json::Arr(
                tel.samples
                    .iter()
                    .map(|s| {
                        Json::Arr(vec![
                            Json::Num(s.t),
                            Json::Num(s.global_skew),
                            Json::Int(s.queue_depth as u64),
                            Json::Int(s.dirty_nodes as u64),
                            Json::Int(s.events),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if !r.oracle_series.is_empty() {
        fields.push((
            "oracle_series",
            Json::Arr(
                r.oracle_series
                    .iter()
                    .map(|&(t, g, l)| Json::Arr(vec![Json::Num(t), Json::Num(g), Json::Num(l)]))
                    .collect(),
            ),
        ));
    }
    if let Some(rep) = &r.oracle_report {
        let stream = |s: &StreamStats| {
            Json::Obj(vec![
                ("count", Json::Int(s.count())),
                ("min", Json::Num(s.min().unwrap_or(f64::NAN))),
                ("max", Json::Num(s.max().unwrap_or(f64::NAN))),
                ("mean", Json::Num(s.mean().unwrap_or(f64::NAN))),
            ])
        };
        fields.push((
            "oracle",
            Json::Obj(vec![
                ("conformant", Json::Bool(rep.is_conformant())),
                ("samples", Json::Int(rep.samples)),
                ("sampled_sources", Json::Int(rep.sampled_sources)),
                ("global_worst", Json::Num(rep.global.worst_utilization)),
                ("gradient_worst", Json::Num(rep.gradient.worst_utilization)),
                ("weak_worst", Json::Num(rep.weak_edges.worst_utilization)),
                ("global_util", stream(&r.oracle_global)),
                ("gradient_util", stream(&r.oracle_gradient)),
            ]),
        ));
    }
    if let Some(trace) = &tel.trace {
        fields.push((
            "trace",
            Json::Obj(vec![
                ("records", Json::Int(trace.records)),
                ("hash", Json::Str(trace.hash_hex())),
            ]),
        ));
    }
    Json::Obj(fields)
}

/// Serializes instrumented runs to the `gcs-telemetry/v1` JSON artifact
/// (one entry per line, like the bench artifact, so checked-in files diff
/// cleanly).
#[must_use]
pub fn telemetry_json(scale: Scale, entries: &[TelemetryRun]) -> String {
    let head = Json::Obj(vec![
        ("format", Json::Str(TELEMETRY_FORMAT.to_string())),
        ("scale", Json::Str(scale.name().to_string())),
    ])
    .to_string();
    let mut out = String::new();
    out.push_str(&head[..head.len() - 1]);
    out.push_str(",\"entries\":[\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&entry_json(e).to_string());
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Writes the telemetry artifact to `path`, creating parent directories
/// as needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_telemetry(path: &Path, scale: Scale, entries: &[TelemetryRun]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(telemetry_json(scale, entries).as_bytes())
}

/// Writes a sealed trace's raw JSONL bytes to `path`, creating parent
/// directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_trace(path: &Path, trace: &TraceOutput) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(trace.text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn instrumented_run_collects_counters_and_trace() {
        let spec = registry::find("ring-steady")
            .expect("built-in")
            .scaled(Scale::Tiny);
        let run = run_instrumented(&spec, 0, 1, true, false).unwrap();
        assert_eq!(run.engine, "sequential");
        assert!(run.stats.events > 0);
        assert_eq!(run.telemetry.ticks, run.stats.ticks);
        assert!(run.telemetry.local.deliveries > 0, "flood traffic flows");
        assert!(run.telemetry.local.flood_merges > 0);
        assert!(!run.telemetry.samples.is_empty());
        assert!(run.telemetry.eval_hist.total() > 0);
        let trace = run.telemetry.trace.as_ref().expect("trace requested");
        assert!(trace.text.starts_with("{\"rec\":\"run\""));
        gcs_telemetry::verify_trace(&trace.text).expect("sealed trace verifies");
        // Sequential runs report exactly one local-counter block origin
        // and no parallel-only activity.
        assert_eq!(run.telemetry.segments, 0);
        assert!(run.telemetry.per_shard_drained.is_empty());
    }

    #[test]
    fn traces_are_byte_identical_across_engines() {
        let spec = registry::find("churn-burst")
            .expect("built-in")
            .scaled(Scale::Tiny);
        let seq = run_instrumented(&spec, 3, 1, true, false).unwrap();
        let par = run_instrumented(&spec, 3, 2, true, false).unwrap();
        let (a, b) = (
            seq.telemetry.trace.as_ref().unwrap(),
            par.telemetry.trace.as_ref().unwrap(),
        );
        assert_eq!(a.text, b.text, "trace bytes must not depend on the engine");
        assert_eq!(a.hash, b.hash);
        // The order-free counter channel must agree too.
        assert_eq!(seq.telemetry.local, par.telemetry.local);
        // ... while the parallel-only metrics exist only on the shard run.
        assert!(par.telemetry.segments > 0);
        assert_eq!(par.telemetry.per_shard_drained.len(), 2);
    }

    #[test]
    fn bench_instrumented_matches_timed_bench_counters_exactly() {
        let spec = registry::find("ring-steady")
            .expect("built-in")
            .scaled(Scale::Tiny);
        for threads in [1usize, 2] {
            let timed = crate::bench::run_one(&spec, 0, threads).unwrap();
            let inst = bench_instrumented(&spec, 0, threads).unwrap();
            assert_eq!(
                (
                    inst.stats.events,
                    inst.stats.ticks,
                    inst.stats.mode_evaluations,
                    inst.stats.messages_delivered
                ),
                (
                    timed.events,
                    timed.ticks,
                    timed.mode_evaluations,
                    timed.messages_delivered
                ),
                "threads {threads}: instrumentation must not change the run"
            );
        }
    }

    #[test]
    fn conformance_ride_along_produces_oracle_series() {
        let spec = registry::find("self-heal")
            .expect("built-in")
            .scaled(Scale::Tiny);
        let run = run_instrumented(&spec, 1, 1, false, true).unwrap();
        assert_eq!(run.oracle_series.len(), run.telemetry.samples.len());
        assert!(run
            .oracle_series
            .iter()
            .all(|&(_, g, l)| (0.0..=1.0).contains(&g) && (0.0..=1.0).contains(&l)));
        assert_eq!(run.telemetry.faults, 1, "the scripted fault is traced");
        let rep = run.oracle_report.as_ref().expect("oracle rode along");
        assert!(rep.is_conformant(), "{:?}", rep.violations());
        assert_eq!(rep.sampled_sources, 0, "exact mode draws no sources");
        assert_eq!(
            run.oracle_global.count(),
            run.telemetry.samples.len() as u64
        );
        assert_eq!(
            run.oracle_global.max(),
            Some(rep.global.worst_utilization),
            "the running summary tracks the report's worst case"
        );
    }

    #[test]
    fn sampled_oracle_ride_is_engine_invariant() {
        let spec = registry::find("churn-burst")
            .expect("built-in")
            .scaled(Scale::Tiny);
        let ride = OracleRide::Sampled(gcs_analysis::oracle::OracleSampling::new(0.5, 13));
        let seq = run_instrumented_oracle(&spec, 3, 1, true, ride).unwrap();
        let par = run_instrumented_oracle(&spec, 3, 2, true, ride).unwrap();
        assert_eq!(
            seq.telemetry.trace.as_ref().unwrap().text,
            par.telemetry.trace.as_ref().unwrap().text,
            "the oracle ride-along must not perturb the trace"
        );
        assert_eq!(seq.oracle_report, par.oracle_report);
        assert_eq!(seq.oracle_series, par.oracle_series);
        assert_eq!(seq.oracle_global, par.oracle_global);
        assert_eq!(seq.oracle_gradient, par.oracle_gradient);
        let rep = seq.oracle_report.expect("oracle rode along");
        assert!(rep.sampled_sources > 0, "sampled mode actually sampled");
    }

    #[test]
    fn artifact_serializes_with_format_tag() {
        let spec = registry::find("ring-steady")
            .expect("built-in")
            .scaled(Scale::Tiny);
        let runs = vec![
            run_instrumented(&spec, 0, 1, true, false).unwrap(),
            run_instrumented(&spec, 0, 2, true, false).unwrap(),
        ];
        let json = telemetry_json(Scale::Tiny, &runs);
        assert!(json.starts_with("{\"format\":\"gcs-telemetry/v1\""));
        assert!(json.contains("\"flood_merges\""));
        assert!(json.contains("\"per_shard_drained\":["));
        assert!(json.contains("\"eval_per_tick\""));
        assert!(json.contains("\"engine\":\"sequential\""));
        assert!(json.contains("\"engine\":\"sharded\""));
        assert!(json.contains("\"trace\":{\"records\":"));
        assert!(json.ends_with("]}\n"));
        // No oracle rode along, so the artifact carries no oracle block.
        assert!(!json.contains("\"oracle\":"));
        // Both engines embed the same trace hash.
        let hash = runs[0].telemetry.trace.as_ref().unwrap().hash_hex();
        assert_eq!(json.matches(&hash).count(), 2);
    }
}
