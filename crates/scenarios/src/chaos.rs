//! Chaos subsystem: bit-exact trace replay and adversarial
//! fault-schedule search.
//!
//! Two halves share this module:
//!
//! * **Replay** — a sealed `gcs-trace/v1` artifact is self-contained (the
//!   recorder embeds the canonical `.scn` text in a `spec` record right
//!   after the run header), so [`replay_trace`] re-materializes the run
//!   from the artifact *alone*: verify the seal, parse the embedded spec,
//!   rebuild from the recorded seed, drive the identical observation
//!   grid, and compare the fresh trace byte-for-byte against the
//!   original. Any tampering is caught twice — by the FNV-1a seal, and by
//!   the replayed-bytes comparison.
//! * **Search** — [`chaos_search`] is a seeded greedy-mutation loop over
//!   fault schedules inside the [`ScenarioSpec`] validation envelope:
//!   clock-offset scripts, scripted estimate corruption, partition and
//!   churn-burst timing. Every candidate runs the exact conformance
//!   oracle; the objective is the worst margin utilization across bound
//!   families ([`ConformanceReport::worst_utilization`]). The search log
//!   (`gcs-chaos/v1` JSONL) is byte-deterministic for a fixed
//!   `(base, seed, budget)` — no wall clock, no thread scheduling — and
//!   embeds every frontier candidate's `.scn`, so a later run can resume
//!   from the best-found schedule ([`frontier_from_log`]). A candidate
//!   that *breaks* a paper bound (> 100 % utilization) aborts the search
//!   and surfaces a sealed, replayable trace of the violating run.

use gcs_analysis::oracle::ConformanceReport;
use rand::{rngs::StdRng, Rng as _, SeedableRng as _};

use crate::conformance::{run_scenario_conformance_with, ConformanceOptions};
use crate::error::ScenarioError;
use crate::json::{self, Json};
use crate::spec::{DynamicsSpec, FaultSpec, ScenarioSpec};
use crate::telemetry::run_instrumented;

/// The search-log format tag.
pub const CHAOS_FORMAT: &str = "gcs-chaos/v1";

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Everything a sealed `gcs-trace/v1` artifact declares about its run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArtifact {
    /// Scenario name from the run header.
    pub scenario: String,
    /// Run seed from the run header.
    pub seed: u64,
    /// Node count from the run header.
    pub nodes: u64,
    /// Hashed record count from the verified seal.
    pub records: u64,
    /// The seal digest (`fnv1a64:%016x`).
    pub hash: String,
    /// The embedded canonical `.scn` text.
    pub scn: String,
    /// The embedded spec, parsed and validated.
    pub spec: ScenarioSpec,
}

/// Verifies a trace's seal and extracts the embedded run identity + spec.
///
/// # Errors
///
/// Returns [`ScenarioError::Invalid`] if the seal fails to verify (a
/// mutated artifact), the header records are malformed, the artifact
/// predates embedded specs, or the embedded spec does not validate.
pub fn read_trace(text: &str) -> Result<TraceArtifact, ScenarioError> {
    let bad = |msg: String| ScenarioError::Invalid(msg);
    let (records, hash) =
        gcs_telemetry::verify_trace(text).map_err(|e| bad(format!("trace rejected: {e}")))?;
    let mut lines = text.lines();
    let run_line = lines.next().ok_or_else(|| bad("empty trace".to_string()))?;
    let run = json::parse(run_line).map_err(|e| bad(format!("run record: {e}")))?;
    if run.get("rec").and_then(|v| v.as_str()) != Some("run") {
        return Err(bad(format!("first record is not a run header: {run_line}")));
    }
    let scenario =
        json::str_field(&run, "scenario", "run record").map_err(|e| bad(e.to_string()))?;
    let seed = json::u64_field(&run, "seed", "run record").map_err(|e| bad(e.to_string()))?;
    let nodes = json::u64_field(&run, "nodes", "run record").map_err(|e| bad(e.to_string()))?;
    let spec_line = lines
        .next()
        .filter(|l| l.starts_with("{\"rec\":\"spec\""))
        .ok_or_else(|| {
            bad("trace has no embedded spec record; it cannot be replayed stand-alone".to_string())
        })?;
    let spec_rec = json::parse(spec_line).map_err(|e| bad(format!("spec record: {e}")))?;
    let scn = json::str_field(&spec_rec, "scn", "spec record").map_err(|e| bad(e.to_string()))?;
    let spec = crate::format::parse(&scn)?;
    spec.validate()?;
    if spec.name != scenario {
        return Err(bad(format!(
            "run header names scenario {scenario:?} but the embedded spec is {:?}",
            spec.name
        )));
    }
    Ok(TraceArtifact {
        scenario,
        seed,
        nodes,
        records,
        hash,
        scn,
        spec,
    })
}

/// The verdict of one replay: the original artifact, the fresh run's
/// seal, and the first divergent record if the bytes differ.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The verified original.
    pub artifact: TraceArtifact,
    /// Engine threads the replay ran with.
    pub threads: usize,
    /// The fresh trace's seal digest.
    pub replayed_hash: String,
    /// The fresh trace's hashed record count.
    pub replayed_records: u64,
    /// First divergent record (1-based line + both sides), `None` when
    /// the replay is bit-identical.
    pub divergence: Option<gcs_telemetry::TraceDiff>,
}

impl ReplayOutcome {
    /// Whether the replayed run reproduced the artifact bit-exactly.
    #[must_use]
    pub fn is_identical(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Re-materializes a run from a sealed trace artifact alone and compares
/// the fresh trace byte-for-byte against the original.
///
/// `threads` picks the replaying engine (1 = sequential reference, > 1 =
/// sharded); the trace contract makes the outcome invariant to it.
///
/// # Errors
///
/// Returns [`ScenarioError`] if the artifact fails verification or the
/// embedded spec fails to build.
pub fn replay_trace(text: &str, threads: usize) -> Result<ReplayOutcome, ScenarioError> {
    let artifact = read_trace(text)?;
    let run = run_instrumented(&artifact.spec, artifact.seed, threads, true, false)?;
    let trace = run.telemetry.trace.as_ref().expect("trace requested");
    Ok(ReplayOutcome {
        threads: threads.max(1),
        replayed_hash: trace.hash_hex(),
        replayed_records: trace.records,
        divergence: gcs_telemetry::trace_diff(text, &trace.text),
        artifact,
    })
}

// ---------------------------------------------------------------------------
// Adversary search
// ---------------------------------------------------------------------------

/// Knobs for one [`chaos_search`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOptions {
    /// Search RNG seed: fixes the entire mutation sequence, hence the
    /// entire log.
    pub seed: u64,
    /// Candidate evaluations after the base (each one full conformance
    /// run per run seed).
    pub budget: u32,
    /// Run seeds each candidate is scored over; the objective is the
    /// worst utilization across them.
    pub run_seeds: Vec<u64>,
    /// Engine threads per evaluation (1 = sequential reference).
    pub threads: usize,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 0,
            budget: 32,
            run_seeds: vec![0],
            threads: 1,
        }
    }
}

/// One scored schedule: a spec plus the oracle's worst margin
/// utilization over the run seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCandidate {
    /// Candidate index (0 = the unmodified base).
    pub iter: u32,
    /// The schedule itself.
    pub spec: ScenarioSpec,
    /// Mutation operator that produced it (`"base"` for iter 0).
    pub op: &'static str,
    /// Bound family realizing the worst utilization
    /// (`global` / `gradient` / `weak-edges`).
    pub family: &'static str,
    /// Worst utilization across the run seeds (1.0 = at the bound).
    pub utilization: f64,
    /// The run seed that realized it.
    pub run_seed: u64,
    /// Whether every scored run stayed within the paper bounds.
    pub conformant: bool,
}

/// A candidate that broke a paper bound, with a sealed replayable trace
/// of the violating run attached.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosViolation {
    /// The violating schedule and its score.
    pub candidate: ChaosCandidate,
    /// The oracle's violation descriptions for the worst run seed.
    pub violations: Vec<String>,
    /// A sealed `gcs-trace/v1` artifact of the violating run — feed it to
    /// [`replay_trace`] to reproduce bit-exactly.
    pub trace: String,
}

/// Everything one search produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosResult {
    /// Base scenario name.
    pub base: String,
    /// Candidates actually scored (excluding the base; less than the
    /// budget only when a violation aborted the search).
    pub evaluated: u32,
    /// Mutation draws discarded because they left the validation
    /// envelope.
    pub skipped: u32,
    /// The best-scoring schedule found (the frontier).
    pub best: ChaosCandidate,
    /// The deterministic `gcs-chaos/v1` JSONL search log.
    pub log: String,
    /// Present when a candidate exceeded 100 % utilization; the search
    /// stops at the first violation.
    pub violation: Option<ChaosViolation>,
}

/// Extracts the best-found schedule from a `gcs-chaos/v1` search log —
/// the resumable frontier. Frontier candidates embed their `.scn`; the
/// last one in the log is the best (the log is append-only and the
/// frontier only ratchets upward).
///
/// # Errors
///
/// Returns [`ScenarioError::Invalid`] on a malformed log or one with no
/// frontier records, or a parse error for the embedded spec.
pub fn frontier_from_log(text: &str) -> Result<ScenarioSpec, ScenarioError> {
    let bad = |msg: String| ScenarioError::Invalid(msg);
    let mut head_seen = false;
    let mut last_scn: Option<String> = None;
    for line in text.lines() {
        let rec = json::parse(line).map_err(|e| bad(format!("chaos log: {e}")))?;
        match rec.get("rec").and_then(|v| v.as_str()) {
            Some("chaos") => {
                if rec.get("format").and_then(|v| v.as_str()) != Some(CHAOS_FORMAT) {
                    return Err(bad(format!("chaos log: not a {CHAOS_FORMAT} header")));
                }
                head_seen = true;
            }
            Some("cand") => {
                if let Some(scn) = rec.get("scn").and_then(|v| v.as_str()) {
                    last_scn = Some(scn.to_string());
                }
            }
            Some("end") | Some("violation") => {}
            other => return Err(bad(format!("chaos log: unknown record {other:?}"))),
        }
    }
    if !head_seen {
        return Err(bad(format!("chaos log: missing {CHAOS_FORMAT} header")));
    }
    let scn = last_scn.ok_or_else(|| bad("chaos log has no frontier candidates".to_string()))?;
    let spec = crate::format::parse(&scn)?;
    spec.validate()?;
    Ok(spec)
}

/// Scores one schedule: exact conformance oracle per run seed, worst
/// utilization wins.
fn score(
    spec: &ScenarioSpec,
    opts: &ChaosOptions,
) -> Result<(&'static str, f64, u64, Vec<String>), ScenarioError> {
    let copts = ConformanceOptions {
        oracle_sample: None,
        oracle_seed: 0,
        threads: opts.threads,
    };
    let mut worst: Option<(&'static str, f64, u64, ConformanceReport)> = None;
    for &s in &opts.run_seeds {
        let report = run_scenario_conformance_with(spec, s, &copts)?;
        let (family, util) = report.worst_utilization();
        if worst.as_ref().is_none_or(|w| util > w.1) {
            worst = Some((family, util, s, report));
        }
    }
    let (family, util, seed, report) = worst.expect("at least one run seed");
    Ok((family, util, seed, report.violations()))
}

/// One local move inside the validation envelope. Returns the operator
/// name; the caller re-validates and redraws on failure.
fn mutate(spec: &mut ScenarioSpec, rng: &mut StdRng) -> &'static str {
    let n = spec.topology.node_count();
    let end = spec.end_secs();
    // Amplitude scale for clock offsets: grow from whatever the script
    // already uses (or a half second when it has none) so hill climbing
    // can both refine and escalate.
    let amp = spec
        .faults
        .iter()
        .filter_map(|f| match *f {
            FaultSpec::ClockOffset { amount, .. } => Some(amount.abs()),
            FaultSpec::EstimateBias { .. } => None,
        })
        .fold(0.5f64, f64::max);
    match rng.gen_range(0u32..6) {
        0 => {
            spec.faults.push(FaultSpec::ClockOffset {
                at: rng.gen_range(0.0..=end),
                node: rng.gen_range(0..n),
                amount: rng.gen_range(-2.0..=2.0) * amp,
            });
            "add-offset"
        }
        1 => {
            spec.faults.push(FaultSpec::EstimateBias {
                at: rng.gen_range(0.0..=end),
                node: rng.gen_range(0..n),
                bias: if rng.gen_bool(0.5) {
                    // Full-rail corruption is the likeliest worst case.
                    if rng.gen_bool(0.5) {
                        1.0
                    } else {
                        -1.0
                    }
                } else {
                    rng.gen_range(-1.0..=1.0)
                },
            });
            "add-est-bias"
        }
        2 if !spec.faults.is_empty() => {
            let i = rng.gen_range(0..spec.faults.len());
            match &mut spec.faults[i] {
                FaultSpec::ClockOffset { at, node, amount } => {
                    match rng.gen_range(0u32..3) {
                        0 => *at = (*at + rng.gen_range(-0.2..=0.2) * end).clamp(0.0, end),
                        1 => *node = rng.gen_range(0..n),
                        _ => *amount *= rng.gen_range(-1.5..=1.5),
                    }
                    "perturb-offset"
                }
                FaultSpec::EstimateBias { at, node, bias } => {
                    match rng.gen_range(0u32..3) {
                        0 => *at = (*at + rng.gen_range(-0.2..=0.2) * end).clamp(0.0, end),
                        1 => *node = rng.gen_range(0..n),
                        _ => *bias = (*bias + rng.gen_range(-0.5..=0.5)).clamp(-1.0, 1.0),
                    }
                    "perturb-est-bias"
                }
            }
        }
        3 if !spec.faults.is_empty() => {
            let i = rng.gen_range(0..spec.faults.len());
            spec.faults.remove(i);
            "remove-fault"
        }
        4 => match spec.dynamics {
            DynamicsSpec::Partition { split, merge, skew } => {
                // Shift the outage window and stretch its length; the
                // validator enforces 0 <= split < merge.
                let width = (merge - split) * rng.gen_range(0.5..=1.5);
                let split = (split + rng.gen_range(-0.2..=0.2) * end).max(0.0);
                spec.dynamics = DynamicsSpec::Partition {
                    split,
                    merge: split + width.max(1e-6),
                    skew,
                };
                "perturb-partition"
            }
            DynamicsSpec::ChurnBurst { period, down, skew } => {
                let period = period * rng.gen_range(0.7..=1.4);
                let down = down * rng.gen_range(0.7..=1.4);
                spec.dynamics = DynamicsSpec::ChurnBurst { period, down, skew };
                "perturb-churn-burst"
            }
            _ => "noop",
        },
        _ => {
            // Re-aim an existing fault's time towards the window where
            // the oracle's allowance has decayed (late in the run).
            if let Some(f) = spec.faults.last_mut() {
                match f {
                    FaultSpec::ClockOffset { at, .. } | FaultSpec::EstimateBias { at, .. } => {
                        *at = rng.gen_range(0.5..=1.0) * end;
                    }
                }
                "retime-fault"
            } else {
                "noop"
            }
        }
    }
}

fn cand_record(c: &ChaosCandidate, accepted: bool, frontier: bool, scn: Option<String>) -> String {
    let mut fields = vec![
        ("rec", Json::Str("cand".to_string())),
        ("iter", Json::Int(u64::from(c.iter))),
        ("op", Json::Str(c.op.to_string())),
        ("family", Json::Str(c.family.to_string())),
        ("util", Json::Num(c.utilization)),
        ("run_seed", Json::Int(c.run_seed)),
        ("conformant", Json::Bool(c.conformant)),
        ("accepted", Json::Bool(accepted)),
        ("frontier", Json::Bool(frontier)),
    ];
    if let Some(scn) = scn {
        fields.push(("scn", Json::Str(scn)));
    }
    Json::Obj(fields).to_string()
}

/// Seeded greedy-mutation search for the schedule that eats the most
/// conformance margin.
///
/// Starting from `base` (already scaled by the caller), each iteration
/// draws one local mutation, discards it if it leaves the validation
/// envelope (bounded redraws), scores the survivor with the exact
/// conformance oracle, and hill-climbs: a strictly better utilization
/// becomes the new frontier *and* the new search point; occasionally the
/// walk steps sideways to a non-improving candidate to escape plateaus
/// (drawn from the same seeded RNG, so the whole trajectory — and the
/// log — is deterministic).
///
/// A candidate that exceeds 100 % utilization stops the search: the
/// result's [`ChaosResult::violation`] carries the violating schedule,
/// the oracle's descriptions, and a sealed replayable trace of the
/// violating run. The frontier ([`ChaosResult::best`]) never includes a
/// violator — it is the strongest schedule that still *passes* the
/// gates, i.e. the one worth ratcheting into the registry.
///
/// # Errors
///
/// Returns [`ScenarioError`] if the base fails to validate or a
/// candidate fails to build (validated candidates should always build;
/// an error here is a bug, not an adversarial win).
///
/// # Panics
///
/// Panics if `opts.run_seeds` is empty.
pub fn chaos_search(
    base: &ScenarioSpec,
    opts: &ChaosOptions,
) -> Result<ChaosResult, ScenarioError> {
    assert!(!opts.run_seeds.is_empty(), "chaos search needs run seeds");
    base.validate()?;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut log = String::new();
    let mut head = vec![
        ("rec", Json::Str("chaos".to_string())),
        ("format", Json::Str(CHAOS_FORMAT.to_string())),
        ("base", Json::Str(base.name.clone())),
        ("seed", Json::Int(opts.seed)),
        ("budget", Json::Int(u64::from(opts.budget))),
        (
            "run_seeds",
            Json::Arr(opts.run_seeds.iter().map(|&s| Json::Int(s)).collect()),
        ),
    ];
    head.push(("threads", Json::Int(opts.threads.max(1) as u64)));
    log.push_str(&Json::Obj(head).to_string());
    log.push('\n');

    let (family, util, run_seed, viols) = score(base, opts)?;
    let mut best = ChaosCandidate {
        iter: 0,
        spec: base.clone(),
        op: "base",
        family,
        utilization: util,
        run_seed,
        conformant: viols.is_empty(),
    };
    log.push_str(&cand_record(
        &best,
        true,
        true,
        Some(crate::format::write(base)),
    ));
    log.push('\n');

    let mut current = base.clone();
    let mut evaluated = 0u32;
    let mut skipped = 0u32;
    let mut violation = None;

    if !best.conformant {
        violation = Some(finish_violation(&best, viols, &mut log)?);
    } else {
        for iter in 1..=opts.budget {
            // Bounded redraws: an envelope-violating mutation costs a
            // skip, not an evaluation.
            let mut cand_spec = None;
            let mut op = "exhausted";
            for _ in 0..16 {
                let mut draft = current.clone();
                let drawn = mutate(&mut draft, &mut rng);
                if drawn != "noop" && draft.validate().is_ok() {
                    cand_spec = Some(draft);
                    op = drawn;
                    break;
                }
                skipped += 1;
            }
            let Some(cand_spec) = cand_spec else { continue };
            let (family, util, run_seed, viols) = score(&cand_spec, opts)?;
            evaluated += 1;
            let cand = ChaosCandidate {
                iter,
                spec: cand_spec,
                op,
                family,
                utilization: util,
                run_seed,
                conformant: viols.is_empty(),
            };
            // The frontier is the ratchet product — an exported schedule
            // has to still pass the gates it tightens — so only
            // *conformant* candidates may claim it; a violator ends the
            // search below with its own replayable trace instead.
            let frontier = cand.conformant && util > best.utilization;
            // Sideways exploration keeps the walk from pinning to a
            // plateau; the frontier itself only ratchets upward.
            let accepted = frontier || rng.gen_bool(0.25);
            log.push_str(&cand_record(
                &cand,
                accepted,
                frontier,
                frontier.then(|| crate::format::write(&cand.spec)),
            ));
            log.push('\n');
            if accepted {
                current = cand.spec.clone();
            }
            if frontier {
                best = cand.clone();
            }
            if !cand.conformant {
                violation = Some(finish_violation(&cand, viols, &mut log)?);
                break;
            }
        }
    }

    log.push_str(
        &Json::Obj(vec![
            ("rec", Json::Str("end".to_string())),
            ("evaluated", Json::Int(u64::from(evaluated))),
            ("skipped", Json::Int(u64::from(skipped))),
            ("best_iter", Json::Int(u64::from(best.iter))),
            ("best_family", Json::Str(best.family.to_string())),
            ("best_util", Json::Num(best.utilization)),
            ("violation", Json::Bool(violation.is_some())),
        ])
        .to_string(),
    );
    log.push('\n');

    Ok(ChaosResult {
        base: base.name.clone(),
        evaluated,
        skipped,
        best,
        log,
        violation,
    })
}

/// Re-runs a violating candidate with the trace recorder attached and
/// appends the violation record to the log.
fn finish_violation(
    cand: &ChaosCandidate,
    violations: Vec<String>,
    log: &mut String,
) -> Result<ChaosViolation, ScenarioError> {
    let run = run_instrumented(&cand.spec, cand.run_seed, 1, true, false)?;
    let trace = run.telemetry.trace.as_ref().expect("trace requested");
    log.push_str(
        &Json::Obj(vec![
            ("rec", Json::Str("violation".to_string())),
            ("iter", Json::Int(u64::from(cand.iter))),
            ("family", Json::Str(cand.family.to_string())),
            ("util", Json::Num(cand.utilization)),
            ("run_seed", Json::Int(cand.run_seed)),
            ("trace_hash", Json::Str(trace.hash_hex())),
            (
                "violations",
                Json::Arr(violations.iter().cloned().map(Json::Str).collect()),
            ),
        ])
        .to_string(),
    );
    log.push('\n');
    Ok(ChaosViolation {
        candidate: cand.clone(),
        violations,
        trace: trace.text.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use crate::spec::Scale;

    fn tiny(name: &str) -> ScenarioSpec {
        registry::find(name).expect("built-in").scaled(Scale::Tiny)
    }

    #[test]
    fn replay_reproduces_a_trace_bit_exactly() {
        let spec = tiny("self-heal");
        let run = run_instrumented(&spec, 3, 1, true, false).unwrap();
        let trace = run.telemetry.trace.as_ref().unwrap();
        let outcome = replay_trace(&trace.text, 1).unwrap();
        assert!(outcome.is_identical(), "{:?}", outcome.divergence);
        assert_eq!(outcome.replayed_hash, trace.hash_hex());
        assert_eq!(outcome.artifact.scenario, "self-heal");
        assert_eq!(outcome.artifact.seed, 3);
        // The artifact's embedded spec round-trips to the driven spec.
        assert_eq!(outcome.artifact.spec, spec);
    }

    #[test]
    fn replay_rejects_a_mutated_artifact() {
        let spec = tiny("ring-steady");
        let run = run_instrumented(&spec, 0, 1, true, false).unwrap();
        let tampered = run.telemetry.trace.as_ref().unwrap().text.replacen(
            "\"rec\":\"sample\",\"t\":",
            "\"rec\":\"sample\",\"t\":9",
            1,
        );
        let err = replay_trace(&tampered, 1).unwrap_err();
        assert!(
            err.to_string().contains("trace rejected"),
            "seal must catch tampering: {err}"
        );
    }

    #[test]
    fn search_is_deterministic_and_logs_a_frontier() {
        let base = tiny("self-heal");
        let opts = ChaosOptions {
            seed: 11,
            budget: 4,
            run_seeds: vec![0],
            threads: 1,
        };
        let a = chaos_search(&base, &opts).unwrap();
        let b = chaos_search(&base, &opts).unwrap();
        assert_eq!(a.log, b.log, "same seed + budget must be byte-identical");
        assert!(a.best.utilization > 0.0);
        assert!(a.log.starts_with("{\"rec\":\"chaos\""));
        assert!(a.log.trim_end().ends_with('}'));
        // The frontier embedded in the log parses back to the best spec.
        let frontier = frontier_from_log(&a.log).unwrap();
        assert_eq!(frontier, a.best.spec);
    }

    #[test]
    fn search_scores_the_base_before_mutating() {
        let base = tiny("ring-steady");
        let opts = ChaosOptions {
            seed: 0,
            budget: 0,
            run_seeds: vec![0],
            threads: 1,
        };
        let r = chaos_search(&base, &opts).unwrap();
        assert_eq!(r.evaluated, 0);
        assert_eq!(r.best.iter, 0);
        assert_eq!(r.best.op, "base");
        assert!(r.best.conformant);
        assert_eq!(frontier_from_log(&r.log).unwrap(), base);
    }

    #[test]
    fn frontier_rejects_malformed_logs() {
        assert!(frontier_from_log("").is_err());
        assert!(frontier_from_log("{\"rec\":\"cand\"}\n").is_err());
        let headless = "{\"rec\":\"chaos\",\"format\":\"bogus/v9\"}\n";
        assert!(frontier_from_log(headless).is_err());
    }
}
