//! Scenario specifications: every adversarial ingredient of a run as data.
//!
//! A [`ScenarioSpec`] captures what the repo used to assemble by hand in
//! `examples/` and the experiment harness: topology family and size, drift
//! model, estimate layer, edge-schedule generator, fault injections,
//! algorithm parameters, and the observation plan. One seam —
//! [`ScenarioSpec::build`] — compiles the spec into a configured
//! [`Simulation`] on top of [`SimBuilder`]; identical spec + seed gives
//! bit-identical runs.

use std::collections::BTreeSet;

use gcs_core::{ErrorModel, EstimateMode, Params, SimBuilder, Simulation};
use gcs_net::mobility::RandomWaypoint;
use gcs_net::{ChurnOptions, EdgeKey, NetworkSchedule, NodeId, Topology};
use gcs_sim::{DriftModel, SimTime};

use crate::error::ScenarioError;

/// Campaign sizing: `Tiny` shrinks node counts and time spans for smoke
/// tests and CI, `Full` doubles the observation window for recorded runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Halved node counts, quartered time spans (CI smoke).
    Tiny,
    /// The spec as written.
    #[default]
    Default,
    /// Doubled time spans.
    Full,
}

impl Scale {
    /// Parses a CLI token.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The canonical token (`tiny` / `default` / `full`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Default => "default",
            Scale::Full => "full",
        }
    }

    /// Multiplier applied to every time span in the spec.
    #[must_use]
    pub fn time_factor(self) -> f64 {
        match self {
            Scale::Tiny => 0.25,
            Scale::Default => 1.0,
            Scale::Full => 2.0,
        }
    }
}

/// A named topology family plus its size parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// A path on `n` nodes.
    Line {
        /// Node count (≥ 2).
        n: usize,
    },
    /// A cycle on `n` nodes.
    Ring {
        /// Node count (≥ 3).
        n: usize,
    },
    /// A `w × h` grid with 4-neighbourhood.
    Grid {
        /// Width.
        w: usize,
        /// Height.
        h: usize,
    },
    /// A `w × h` torus.
    Torus {
        /// Width (≥ 3).
        w: usize,
        /// Height (≥ 3).
        h: usize,
    },
    /// A star with node 0 as hub.
    Star {
        /// Node count (≥ 2).
        n: usize,
    },
    /// The complete graph.
    Complete {
        /// Node count (≥ 2).
        n: usize,
    },
    /// The `dim`-dimensional hypercube (`2^dim` nodes, log diameter).
    Hypercube {
        /// Dimension (1–16).
        dim: u32,
    },
    /// Erdős–Rényi `G(n, p)`, connectivity-repaired; the graph depends on
    /// the run seed.
    Gnp {
        /// Node count (≥ 2).
        n: usize,
        /// Edge probability in `[0, 1]`.
        p: f64,
    },
    /// Random geometric graph in the unit square, connectivity-repaired;
    /// seed-dependent.
    Geometric {
        /// Node count (≥ 2).
        n: usize,
        /// Connection radius (> 0).
        radius: f64,
    },
    /// Watts–Strogatz small world; seed-dependent.
    SmallWorld {
        /// Node count (≥ 4).
        n: usize,
        /// Even base degree, `2 ≤ k < n`.
        k: usize,
        /// Rewiring probability in `[0, 1]`.
        beta: f64,
    },
    /// Barabási–Albert scale-free graph; seed-dependent.
    ScaleFree {
        /// Node count (> m).
        n: usize,
        /// Edges attached per arriving node (≥ 1).
        m: usize,
    },
}

impl TopologySpec {
    /// Number of nodes the realized topology will have.
    #[must_use]
    pub fn node_count(&self) -> usize {
        match *self {
            TopologySpec::Line { n }
            | TopologySpec::Ring { n }
            | TopologySpec::Star { n }
            | TopologySpec::Complete { n }
            | TopologySpec::Gnp { n, .. }
            | TopologySpec::Geometric { n, .. }
            | TopologySpec::SmallWorld { n, .. }
            | TopologySpec::ScaleFree { n, .. } => n,
            TopologySpec::Grid { w, h } | TopologySpec::Torus { w, h } => w * h,
            TopologySpec::Hypercube { dim } => 1 << dim,
        }
    }

    /// Materializes the topology. Random families draw from the run seed,
    /// so ensembles explore the family rather than one fixed instance.
    #[must_use]
    pub fn realize(&self, seed: u64) -> Topology {
        match *self {
            TopologySpec::Line { n } => Topology::line(n),
            TopologySpec::Ring { n } => Topology::ring(n),
            TopologySpec::Grid { w, h } => Topology::grid(w, h),
            TopologySpec::Torus { w, h } => Topology::torus(w, h),
            TopologySpec::Star { n } => Topology::star(n),
            TopologySpec::Complete { n } => Topology::complete(n),
            TopologySpec::Hypercube { dim } => Topology::hypercube(dim),
            TopologySpec::Gnp { n, p } => Topology::random_gnp(n, p, seed),
            TopologySpec::Geometric { n, radius } => Topology::random_geometric(n, radius, seed),
            TopologySpec::SmallWorld { n, k, beta } => Topology::small_world(n, k, beta, seed),
            TopologySpec::ScaleFree { n, m } => Topology::scale_free(n, m, seed),
        }
    }

    /// The family keyword used by the `.scn` format.
    #[must_use]
    pub fn family(&self) -> &'static str {
        match self {
            TopologySpec::Line { .. } => "line",
            TopologySpec::Ring { .. } => "ring",
            TopologySpec::Grid { .. } => "grid",
            TopologySpec::Torus { .. } => "torus",
            TopologySpec::Star { .. } => "star",
            TopologySpec::Complete { .. } => "complete",
            TopologySpec::Hypercube { .. } => "hypercube",
            TopologySpec::Gnp { .. } => "gnp",
            TopologySpec::Geometric { .. } => "geometric",
            TopologySpec::SmallWorld { .. } => "small-world",
            TopologySpec::ScaleFree { .. } => "scale-free",
        }
    }

    /// Resizes the family towards `target` nodes, respecting each family's
    /// structural minimum and shape (grids stay square-ish, hypercubes pick
    /// the nearest power of two). Used by the `tiny-nodes` clamp that lets
    /// engine-scale benchmark scenarios (10³–10⁴ nodes) shrink to CI size.
    #[must_use]
    pub fn with_node_target(&self, target: usize) -> Self {
        match *self {
            TopologySpec::Line { .. } => TopologySpec::Line { n: target.max(2) },
            TopologySpec::Ring { .. } => TopologySpec::Ring { n: target.max(3) },
            TopologySpec::Grid { .. } => {
                let side = ((target as f64).sqrt().round() as usize).max(2);
                TopologySpec::Grid { w: side, h: side }
            }
            TopologySpec::Torus { .. } => {
                let side = ((target as f64).sqrt().round() as usize).max(3);
                TopologySpec::Torus { w: side, h: side }
            }
            TopologySpec::Star { .. } => TopologySpec::Star { n: target.max(2) },
            TopologySpec::Complete { .. } => TopologySpec::Complete { n: target.max(2) },
            TopologySpec::Hypercube { .. } => TopologySpec::Hypercube {
                dim: ((target.max(2) as f64).log2().round() as u32).clamp(1, 16),
            },
            TopologySpec::Gnp { p, .. } => TopologySpec::Gnp {
                n: target.max(4),
                p,
            },
            TopologySpec::Geometric { radius, .. } => TopologySpec::Geometric {
                n: target.max(4),
                radius,
            },
            TopologySpec::SmallWorld { k, beta, .. } => TopologySpec::SmallWorld {
                n: target.max(4).max(k + 1),
                k,
                beta,
            },
            TopologySpec::ScaleFree { m, .. } => TopologySpec::ScaleFree {
                n: target.max(m + 1).max(4),
                m,
            },
        }
    }

    /// Shrinks node counts for [`Scale::Tiny`], respecting each family's
    /// structural minimum; other scales leave sizes untouched.
    #[must_use]
    pub fn scaled(&self, scale: Scale) -> Self {
        if scale != Scale::Tiny {
            return self.clone();
        }
        match *self {
            TopologySpec::Line { n } => TopologySpec::Line { n: (n / 2).max(2) },
            TopologySpec::Ring { n } => TopologySpec::Ring { n: (n / 2).max(3) },
            TopologySpec::Grid { w, h } => TopologySpec::Grid {
                w: (w / 2).max(2),
                h: (h / 2).max(2),
            },
            TopologySpec::Torus { w, h } => TopologySpec::Torus {
                w: (w / 2).max(3),
                h: (h / 2).max(3),
            },
            TopologySpec::Star { n } => TopologySpec::Star { n: (n / 2).max(2) },
            TopologySpec::Complete { n } => TopologySpec::Complete { n: (n / 2).max(2) },
            TopologySpec::Hypercube { dim } => TopologySpec::Hypercube {
                dim: (dim / 2).max(1),
            },
            TopologySpec::Gnp { n, p } => TopologySpec::Gnp {
                n: (n / 2).max(4),
                p,
            },
            TopologySpec::Geometric { n, radius } => TopologySpec::Geometric {
                n: (n / 2).max(4),
                radius,
            },
            TopologySpec::SmallWorld { n, k, beta } => TopologySpec::SmallWorld {
                n: (n / 2).max(4).max(k + 1),
                k,
                beta,
            },
            TopologySpec::ScaleFree { n, m } => TopologySpec::ScaleFree {
                n: (n / 2).max(m + 1).max(4),
                m,
            },
        }
    }
}

/// The hardware-drift adversary (mirrors [`DriftModel`], minus the
/// explicit-schedule variant, which is not expressible as a data file).
#[derive(Debug, Clone, PartialEq)]
pub enum DriftSpec {
    /// All clocks run at rate 1.
    None,
    /// Independent constant rate per node in `[1−ρ, 1+ρ]`.
    RandomConstant,
    /// First half fast, second half slow — the worst case on a line.
    TwoBlock,
    /// Even nodes fast, odd nodes slow — stresses every edge.
    Alternating,
    /// Bounded random walk of every rate.
    RandomWalk {
        /// Seconds between steps.
        period: f64,
        /// Maximum step as a fraction of ρ.
        step: f64,
    },
    /// The two blocks of `TwoBlock` swap extremes every `period` seconds.
    FlipFlop {
        /// Seconds between swaps.
        period: f64,
    },
}

impl DriftSpec {
    /// The concrete drift model.
    #[must_use]
    pub fn model(&self) -> DriftModel {
        match *self {
            DriftSpec::None => DriftModel::None,
            DriftSpec::RandomConstant => DriftModel::RandomConstant,
            DriftSpec::TwoBlock => DriftModel::TwoBlock,
            DriftSpec::Alternating => DriftModel::Alternating,
            DriftSpec::RandomWalk { period, step } => DriftModel::RandomWalk {
                period,
                step_frac: step,
            },
            DriftSpec::FlipFlop { period } => DriftModel::FlipFlop { period },
        }
    }
}

/// The estimate layer (§3.1, inequality (1)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateSpec {
    /// Oracle with exact values.
    OracleNone,
    /// Oracle with a persistent per-edge bias within `±ε`.
    OracleBias,
    /// Oracle hiding up to `ε` of skew per edge (adversarial).
    OracleHide,
    /// Periodic floods + dead reckoning.
    Messages,
}

impl EstimateSpec {
    /// The concrete estimate mode.
    #[must_use]
    pub fn mode(&self) -> EstimateMode {
        match self {
            EstimateSpec::OracleNone => EstimateMode::Oracle(ErrorModel::None),
            EstimateSpec::OracleBias => EstimateMode::Oracle(ErrorModel::RandomBias),
            EstimateSpec::OracleHide => EstimateMode::Oracle(ErrorModel::Hide),
            EstimateSpec::Messages => EstimateMode::Messages,
        }
    }

    /// The `.scn` token.
    #[must_use]
    pub fn token(&self) -> &'static str {
        match self {
            EstimateSpec::OracleNone => "oracle-none",
            EstimateSpec::OracleBias => "oracle-bias",
            EstimateSpec::OracleHide => "oracle-hide",
            EstimateSpec::Messages => "messages",
        }
    }
}

/// The edge-schedule generator layered over the topology.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicsSpec {
    /// All topology edges up forever.
    Static,
    /// `count` chords appear at time `at`: chord `i` connects node `i` to
    /// node `(i + n/2) mod n` (deterministic, so observers know which
    /// pairs to watch); chords duplicating topology edges are skipped.
    Insertion {
        /// Appearance time (seconds).
        at: f64,
        /// Number of chords.
        count: usize,
        /// Offset between the two directions of each appearance.
        skew: f64,
    },
    /// One shortcut edge joining the two extreme nodes (`0` and `n − 1`)
    /// appears at time `at` — the Theorem 8.1 lower-bound construction,
    /// where a legal `Θ(n)` gradient suddenly gains an edge spanning it.
    /// A shortcut duplicating a topology edge is skipped.
    Shortcut {
        /// Appearance time (seconds).
        at: f64,
        /// Offset between the two directions of the appearance.
        skew: f64,
    },
    /// Correlated churn bursts: a spanning tree stays up forever; every
    /// `period` seconds *all* other edges go down simultaneously for
    /// `down` seconds. Unlike [`DynamicsSpec::Churn`]'s independent
    /// exponential phases, the bursts are perfectly correlated — the
    /// worst case for the staged-insertion machinery, which must
    /// re-insert the whole non-backbone edge set at once, every time.
    ChurnBurst {
        /// Seconds between burst starts (the first burst is at `period`).
        period: f64,
        /// Burst duration: how long the non-backbone edges stay down.
        down: f64,
        /// Maximum direction-detection offset.
        skew: f64,
    },
    /// Connectivity-preserving churn: a spanning tree stays up, every
    /// other edge flaps with exponential phases until the scenario ends.
    Churn {
        /// Mean up-phase duration (seconds).
        mean_up: f64,
        /// Mean down-phase duration (seconds).
        mean_down: f64,
        /// Maximum direction-detection offset.
        skew: f64,
        /// Probability a churnable edge starts up.
        start_up: f64,
    },
    /// Random-waypoint mobility; only the topology's node count is used —
    /// links are distance-induced.
    Mobility {
        /// Radio range (fraction of the unit square's side).
        radius: f64,
        /// Disconnect at `radius * hysteresis` (≥ 1).
        hysteresis: f64,
        /// Minimum node speed.
        speed_min: f64,
        /// Maximum node speed.
        speed_max: f64,
        /// Walk sampling period (seconds).
        sample: f64,
        /// Maximum direction-detection offset (< `sample`).
        skew: f64,
    },
    /// Every edge crossing the cut between the first `n/2` nodes and the
    /// rest goes down at `split` and comes back at `merge`.
    Partition {
        /// Cut-open time (seconds).
        split: f64,
        /// Cut-close time (seconds).
        merge: f64,
        /// Maximum direction-detection offset.
        skew: f64,
    },
}

impl DynamicsSpec {
    /// The `.scn` keyword of this generator.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            DynamicsSpec::Static => "static",
            DynamicsSpec::Insertion { .. } => "insertion",
            DynamicsSpec::Shortcut { .. } => "shortcut",
            DynamicsSpec::ChurnBurst { .. } => "churn-burst",
            DynamicsSpec::Churn { .. } => "churn",
            DynamicsSpec::Mobility { .. } => "mobility",
            DynamicsSpec::Partition { .. } => "partition",
        }
    }

    /// Rescales scripted instants by `factor` (phase means, geometry, and
    /// skews are physical constants and stay put).
    #[must_use]
    pub fn time_scaled(&self, factor: f64) -> Self {
        match *self {
            DynamicsSpec::Insertion { at, count, skew } => DynamicsSpec::Insertion {
                at: at * factor,
                count,
                skew,
            },
            DynamicsSpec::Shortcut { at, skew } => DynamicsSpec::Shortcut {
                at: at * factor,
                skew,
            },
            // The burst schedule is scripted instants (unlike the
            // exponential churn phases, which are physical constants), so
            // it scales with the run — *including* the direction skew:
            // its validity constraint (2·skew < down < period − 2·skew)
            // couples it to the scripted spans, so scaling all three by
            // the same factor is what keeps a valid spec valid at every
            // scale.
            DynamicsSpec::ChurnBurst { period, down, skew } => DynamicsSpec::ChurnBurst {
                period: period * factor,
                down: down * factor,
                skew: skew * factor,
            },
            DynamicsSpec::Partition { split, merge, skew } => DynamicsSpec::Partition {
                split: split * factor,
                merge: merge * factor,
                skew,
            },
            ref other => other.clone(),
        }
    }
}

/// A scripted out-of-model fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// Adds `amount` seconds to one node's logical clock at time `at`
    /// (the self-stabilization experiments of §5.2).
    ClockOffset {
        /// Injection time (seconds).
        at: f64,
        /// Target node index.
        node: usize,
        /// Offset added to the logical clock.
        amount: f64,
    },
    /// Pushes one node's neighbour estimates towards `bias · ε` from time
    /// `at` on, clamped into the `±ε` envelope of inequality (1) — an
    /// *in-model* adversary, so the conformance oracle grants it no
    /// recovery allowance.
    EstimateBias {
        /// Injection time (seconds).
        at: f64,
        /// Target node index.
        node: usize,
        /// Bias fraction in `[-1, 1]` of the estimate-error bound ε.
        bias: f64,
    },
}

impl FaultSpec {
    /// When the fault fires.
    #[must_use]
    pub fn at(&self) -> f64 {
        match *self {
            FaultSpec::ClockOffset { at, .. } | FaultSpec::EstimateBias { at, .. } => at,
        }
    }

    /// The targeted node index.
    #[must_use]
    pub fn node(&self) -> usize {
        match *self {
            FaultSpec::ClockOffset { node, .. } | FaultSpec::EstimateBias { node, .. } => node,
        }
    }
}

/// Which scalar a campaign aggregates across seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Maximum global skew over the observation window.
    GlobalSkew,
    /// Maximum local (per-edge) skew over the observation window.
    LocalSkew,
    /// Global skew at the final instant (recovery scenarios).
    FinalGlobalSkew,
}

impl Metric {
    /// The `.scn` token.
    #[must_use]
    pub fn token(&self) -> &'static str {
        match self {
            Metric::GlobalSkew => "global-skew",
            Metric::LocalSkew => "local-skew",
            Metric::FinalGlobalSkew => "final-global-skew",
        }
    }

    /// Parses a `.scn` token.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "global-skew" => Some(Metric::GlobalSkew),
            "local-skew" => Some(Metric::LocalSkew),
            "final-global-skew" => Some(Metric::FinalGlobalSkew),
            _ => None,
        }
    }
}

/// A complete, self-contained scenario: everything needed to reproduce a
/// run except the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Unique name (`[a-z0-9-]+`), doubles as the `.scn` file stem.
    pub name: String,
    /// One-line human description (may be empty).
    pub description: String,
    /// Topology family and size.
    pub topology: TopologySpec,
    /// Hardware-drift adversary.
    pub drift: DriftSpec,
    /// Estimate layer.
    pub estimates: EstimateSpec,
    /// Edge-schedule generator.
    pub dynamics: DynamicsSpec,
    /// Scripted faults, applied by the campaign runner in time order.
    pub faults: Vec<FaultSpec>,
    /// Drift bound ρ.
    pub rho: f64,
    /// Fast-mode boost µ.
    pub mu: f64,
    /// Optional insertion-duration scale (paper constant when absent).
    pub insertion_scale: Option<f64>,
    /// Optional static global-skew estimate `G̃` (derived when absent).
    pub g_tilde: Option<f64>,
    /// §7 node-local dynamic `G̃_u(t)` estimates.
    pub dynamic_estimates: bool,
    /// Warm-up before the observation window (seconds).
    pub warmup: f64,
    /// Observation-window length (seconds).
    pub duration: f64,
    /// Sampling period of the observation plan (seconds).
    pub sample: f64,
    /// Primary metric aggregated across seeds.
    pub metric: Metric,
    /// Engine-scale benchmark scenario: excluded from default campaigns
    /// (`run all` and the CI regression gate keep their historical scenario
    /// set) but fully runnable by name and swept by `gcs-scenarios bench`.
    pub bench: bool,
    /// Explicit node-count clamp applied at [`Scale::Tiny`] instead of the
    /// default halving — how 10³–10⁴-node benchmark scenarios stay
    /// CI-sized. `None` keeps the halving rule.
    pub tiny_nodes: Option<usize>,
}

impl ScenarioSpec {
    /// End of the run: `warmup + duration`.
    #[must_use]
    pub fn end_secs(&self) -> f64 {
        self.warmup + self.duration
    }

    /// The spec resized for `scale`: node counts shrink under
    /// [`Scale::Tiny`], and every scripted time span (warm-up, duration,
    /// dynamics instants, fault times) is multiplied by the scale's time
    /// factor. The sampling period is left alone so tiny runs still
    /// observe enough instants. Faults targeting nodes that no longer
    /// exist are dropped — *not* re-aimed at surviving nodes, which would
    /// stack offsets and corrupt multi-node scripts like the
    /// `line-shortcut` gradient install (per-node offsets keep their
    /// spacing, so a truncated install is still a legal gradient).
    #[must_use]
    pub fn scaled(&self, scale: Scale) -> Self {
        let f = scale.time_factor();
        let mut spec = self.clone();
        spec.topology = match (scale, self.tiny_nodes) {
            (Scale::Tiny, Some(target)) => self.topology.with_node_target(target),
            _ => self.topology.scaled(scale),
        };
        spec.dynamics = self.dynamics.time_scaled(f);
        spec.warmup *= f;
        spec.duration = (self.duration * f).max(self.sample);
        let nodes = spec.topology.node_count();
        spec.faults = self
            .faults
            .iter()
            .filter(|fault| fault.node() < nodes)
            .map(|fault| match *fault {
                FaultSpec::ClockOffset { at, node, amount } => FaultSpec::ClockOffset {
                    at: at * f,
                    node,
                    amount,
                },
                FaultSpec::EstimateBias { at, node, bias } => FaultSpec::EstimateBias {
                    at: at * f,
                    node,
                    bias,
                },
            })
            .collect();
        spec
    }

    /// Checks every range constraint, returning the first problem found.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] describing the offending field.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let fail = |msg: String| Err(ScenarioError::Invalid(msg));
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        {
            return fail(format!(
                "name {:?} must be non-empty and use only [a-z0-9-]",
                self.name
            ));
        }
        if self.description.chars().any(|c| (c as u32) < 0x20)
            || self.description != self.description.trim()
        {
            return fail(
                "description must be a single trimmed line without control characters \
                 (anything else cannot round-trip through the .scn format)"
                    .to_string(),
            );
        }
        let n = self.topology.node_count();
        match self.topology {
            TopologySpec::Line { n } | TopologySpec::Star { n } | TopologySpec::Complete { n } => {
                if n < 2 {
                    return fail(format!("{} needs n >= 2", self.topology.family()));
                }
            }
            TopologySpec::Ring { n } => {
                if n < 3 {
                    return fail("ring needs n >= 3".to_string());
                }
            }
            TopologySpec::Grid { w, h } => {
                if w == 0 || h == 0 || w * h < 2 {
                    return fail("grid needs w*h >= 2".to_string());
                }
            }
            TopologySpec::Torus { w, h } => {
                if w < 3 || h < 3 {
                    return fail("torus needs w, h >= 3".to_string());
                }
            }
            TopologySpec::Hypercube { dim } => {
                if !(1..=16).contains(&dim) {
                    return fail("hypercube needs 1 <= dim <= 16".to_string());
                }
            }
            TopologySpec::Gnp { n, p } => {
                if n < 2 || !(0.0..=1.0).contains(&p) {
                    return fail("gnp needs n >= 2 and p in [0, 1]".to_string());
                }
            }
            TopologySpec::Geometric { n, radius } => {
                if n < 2 || radius <= 0.0 {
                    return fail("geometric needs n >= 2 and radius > 0".to_string());
                }
            }
            TopologySpec::SmallWorld { n, k, beta } => {
                if n < 4 || k % 2 != 0 || k < 2 || k >= n || !(0.0..=1.0).contains(&beta) {
                    return fail(
                        "small-world needs n >= 4, even 2 <= k < n, beta in [0, 1]".to_string(),
                    );
                }
            }
            TopologySpec::ScaleFree { n, m } => {
                if m < 1 || n <= m {
                    return fail("scale-free needs m >= 1 and n > m".to_string());
                }
            }
        }
        match self.dynamics {
            DynamicsSpec::Static => {}
            DynamicsSpec::Insertion { at, count, skew } => {
                if at < 0.0 || count == 0 || skew < 0.0 {
                    return fail("insertion needs t >= 0, count >= 1, skew >= 0".to_string());
                }
                if n < 4 {
                    return fail("insertion needs at least 4 nodes for a chord".to_string());
                }
            }
            DynamicsSpec::Shortcut { at, skew } => {
                if at < 0.0 || skew < 0.0 {
                    return fail("shortcut needs t >= 0 and skew >= 0".to_string());
                }
                if n < 3 {
                    return fail("shortcut needs at least 3 nodes".to_string());
                }
            }
            DynamicsSpec::ChurnBurst { period, down, skew } => {
                if period <= 0.0 || down <= 0.0 || skew < 0.0 {
                    return fail("churn-burst needs period > 0, down > 0, skew >= 0".to_string());
                }
                // The mirrored Up of one burst must not overtake the
                // mirrored Down of the next (same clamp as the churn
                // generator's minimum phase).
                if down + 2.0 * skew >= period || down <= 2.0 * skew {
                    return fail(format!(
                        "churn-burst needs 2*skew < down < period - 2*skew \
                         (got period={period}, down={down}, skew={skew})"
                    ));
                }
            }
            DynamicsSpec::Churn {
                mean_up,
                mean_down,
                skew,
                start_up,
            } => {
                if mean_up <= 0.0 || mean_down <= 0.0 {
                    return fail("churn phase means must be positive".to_string());
                }
                if skew < 0.0 || !(0.0..=1.0).contains(&start_up) {
                    return fail("churn needs skew >= 0 and start-up in [0, 1]".to_string());
                }
            }
            DynamicsSpec::Mobility {
                radius,
                hysteresis,
                speed_min,
                speed_max,
                sample,
                skew,
            } => {
                if radius <= 0.0
                    || hysteresis < 1.0
                    || speed_min <= 0.0
                    || speed_min > speed_max
                    || sample <= 0.0
                    || skew < 0.0
                    || skew >= sample
                {
                    return fail(
                        "mobility needs radius > 0, hysteresis >= 1, 0 < speed-min <= \
                         speed-max, sample > 0, 0 <= skew < sample"
                            .to_string(),
                    );
                }
            }
            DynamicsSpec::Partition { split, merge, skew } => {
                if split < 0.0 || merge <= split || skew < 0.0 {
                    return fail("partition needs 0 <= split < merge and skew >= 0".to_string());
                }
                // The two halves must be internally connected for *every*
                // seed; only families whose node order guarantees that are
                // allowed (random families or stars could strand a side).
                let ok = matches!(
                    self.topology,
                    TopologySpec::Line { .. }
                        | TopologySpec::Ring { .. }
                        | TopologySpec::Grid { .. }
                        | TopologySpec::Torus { .. }
                        | TopologySpec::Complete { .. }
                        | TopologySpec::Hypercube { .. }
                );
                if !ok {
                    return fail(format!(
                        "partition dynamics require a line/ring/grid/torus/complete/hypercube \
                         topology (both halves stay connected); got {}",
                        self.topology.family()
                    ));
                }
                if n < 4 {
                    return fail("partition needs at least 4 nodes".to_string());
                }
            }
        }
        for f in &self.faults {
            match *f {
                FaultSpec::ClockOffset { at, node, amount } => {
                    if at < 0.0 || node >= n || !amount.is_finite() {
                        return fail(format!(
                            "fault offset needs t >= 0, node < {n}, finite amount (got t={at}, \
                             node={node}, amount={amount})"
                        ));
                    }
                }
                FaultSpec::EstimateBias { at, node, bias } => {
                    if at < 0.0 || node >= n || !bias.is_finite() || !(-1.0..=1.0).contains(&bias) {
                        return fail(format!(
                            "fault est-bias needs t >= 0, node < {n}, bias in [-1, 1] (got \
                             t={at}, node={node}, bias={bias})"
                        ));
                    }
                }
            }
            if f.at() > self.end_secs() {
                return fail(format!(
                    "fault at t={} is after the scenario end ({}) and would never fire",
                    f.at(),
                    self.end_secs()
                ));
            }
        }
        if self.warmup < 0.0 || self.duration <= 0.0 {
            return fail("need warmup >= 0 and duration > 0".to_string());
        }
        if self.sample <= 0.0 || self.sample > self.duration {
            return fail("need 0 < sample <= duration".to_string());
        }
        if let Some(s) = self.insertion_scale {
            if s <= 0.0 {
                return fail(format!("insertion-scale must be positive, got {s}"));
            }
        }
        if let Some(g) = self.g_tilde {
            if g <= 0.0 {
                return fail(format!("g-tilde must be positive, got {g}"));
            }
        }
        if let Some(t) = self.tiny_nodes {
            if t < 2 {
                return fail(format!("tiny-nodes must be at least 2, got {t}"));
            }
            if t > self.topology.node_count() {
                return fail(format!(
                    "tiny-nodes ({t}) must not exceed the full-scale node count ({})",
                    self.topology.node_count()
                ));
            }
        }
        // Delegate the algorithm-parameter constraints to the real
        // validator so `.scn` authors get the paper's error messages.
        self.params()?;
        Ok(())
    }

    /// The validated algorithm parameters of this scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Params`] when the combination is rejected.
    pub fn params(&self) -> Result<Params, ScenarioError> {
        let mut pb = Params::builder();
        pb.rho(self.rho).mu(self.mu);
        if let Some(s) = self.insertion_scale {
            pb.insertion_scale(s);
        }
        if let Some(g) = self.g_tilde {
            pb.g_tilde(g);
        }
        if self.dynamic_estimates {
            pb.dynamic_estimates(true);
        }
        Ok(pb.build()?)
    }

    /// Compiles the scenario's network schedule for `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] if validation fails.
    pub fn schedule(&self, seed: u64) -> Result<NetworkSchedule, ScenarioError> {
        self.validate()?;
        let topo = self.topology.realize(seed);
        let end = self.end_secs();
        Ok(match self.dynamics {
            DynamicsSpec::Static => NetworkSchedule::static_graph(&topo),
            DynamicsSpec::Insertion { at, count, skew } => {
                let n = topo.node_count();
                let existing: BTreeSet<EdgeKey> = topo.edges().iter().copied().collect();
                let mut chosen = BTreeSet::new();
                let mut chords = Vec::new();
                for i in 0..count {
                    let (u, v) = (i % n, (i + n / 2) % n);
                    if u == v {
                        continue;
                    }
                    let e = EdgeKey::new(NodeId::from(u), NodeId::from(v));
                    if existing.contains(&e) || !chosen.insert(e) {
                        continue;
                    }
                    chords.push((e, SimTime::from_secs(at)));
                }
                NetworkSchedule::with_edge_insertion(&topo, &chords, skew)
            }
            DynamicsSpec::Shortcut { at, skew } => {
                let n = topo.node_count();
                let e = EdgeKey::new(NodeId(0), NodeId::from(n - 1));
                let chords: Vec<(EdgeKey, SimTime)> = if topo.edges().contains(&e) {
                    Vec::new()
                } else {
                    vec![(e, SimTime::from_secs(at))]
                };
                NetworkSchedule::with_edge_insertion(&topo, &chords, skew)
            }
            DynamicsSpec::ChurnBurst { period, down, skew } => {
                let mut s = NetworkSchedule::empty(topo.node_count());
                for &e in topo.edges() {
                    s.add_initial_undirected(e);
                }
                let backbone: BTreeSet<EdgeKey> = topo.spanning_tree().into_iter().collect();
                let mut t = period;
                while t < end {
                    for &e in topo.edges() {
                        if backbone.contains(&e) {
                            continue;
                        }
                        s.add_undirected_down(e, SimTime::from_secs(t), skew);
                        s.add_undirected_up(e, SimTime::from_secs(t + down), skew);
                    }
                    t += period;
                }
                s
            }
            DynamicsSpec::Churn {
                mean_up,
                mean_down,
                skew,
                start_up,
            } => NetworkSchedule::churn(
                &topo,
                ChurnOptions {
                    horizon: end,
                    mean_up,
                    mean_down,
                    direction_skew_max: skew,
                    start_up_probability: start_up,
                },
                seed,
            ),
            DynamicsSpec::Mobility {
                radius,
                hysteresis,
                speed_min,
                speed_max,
                sample,
                skew,
            } => RandomWaypoint {
                n: topo.node_count(),
                radius,
                hysteresis,
                speed: (speed_min, speed_max),
                horizon: end,
                sample_period: sample,
                direction_skew_max: skew,
            }
            .generate(seed),
            DynamicsSpec::Partition { split, merge, skew } => {
                let left: Vec<NodeId> = (0..topo.node_count() / 2).map(NodeId::from).collect();
                NetworkSchedule::partition_and_merge(
                    &topo,
                    &left,
                    SimTime::from_secs(split),
                    SimTime::from_secs(merge),
                    skew,
                )
            }
        })
    }

    /// A [`SimBuilder`] pre-loaded with everything the spec describes —
    /// compiled schedule, drift, estimates, horizon, seed, and the spec's
    /// own parameters. The experiment harness chains observation-only
    /// toggles (diameter tracking, baseline policies, a longer horizon)
    /// before calling [`SimBuilder::build`]; the topology and edge
    /// schedule always come from the spec.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if validation or the parameters reject
    /// the spec.
    pub fn builder(&self, seed: u64) -> Result<SimBuilder, ScenarioError> {
        let params = self.params()?;
        self.builder_with(params, seed)
    }

    /// Like [`ScenarioSpec::builder`], but with caller-supplied
    /// parameters. This is the seam for ablations that sweep algorithm
    /// knobs the scenario format deliberately does not model (κ scale,
    /// refresh period, insertion strategy): the adversary — topology,
    /// dynamics, drift, estimates — still comes from the spec.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if validation rejects the spec.
    pub fn builder_with(&self, params: Params, seed: u64) -> Result<SimBuilder, ScenarioError> {
        let schedule = self.schedule(seed)?;
        Ok(SimBuilder::new(params)
            .schedule(schedule)
            .drift(self.drift.model())
            .estimates(self.estimates.mode())
            .horizon(self.end_secs() + 10.0)
            .seed(seed))
    }

    /// Compiles the spec into a ready-to-run [`Simulation`]: the single
    /// seam every consumer (examples, experiments, campaigns) goes
    /// through. Identical spec + seed ⇒ bit-identical runs.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if validation, the parameters, or the
    /// simulation builder reject the spec.
    pub fn build(&self, seed: u64) -> Result<Simulation, ScenarioError> {
        Ok(self.builder(seed)?.build()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    fn base() -> ScenarioSpec {
        registry::find("line-worstcase").expect("built-in")
    }

    #[test]
    fn build_compiles_and_runs() {
        let spec = base();
        let mut sim = spec.build(1).unwrap();
        sim.run_until_secs(5.0);
        assert!(sim.snapshot().global_skew().is_finite());
        assert_eq!(sim.node_count(), spec.topology.node_count());
    }

    #[test]
    fn validation_rejects_bad_names() {
        let mut spec = base();
        spec.name = "Bad Name".to_string();
        assert!(matches!(spec.validate(), Err(ScenarioError::Invalid(_))));
    }

    #[test]
    fn validation_rejects_faults_after_the_end() {
        let mut spec = base();
        spec.faults.push(FaultSpec::ClockOffset {
            at: spec.end_secs() + 1.0,
            node: 0,
            amount: 0.5,
        });
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("never"), "{err}");
    }

    #[test]
    fn validation_rejects_untrimmed_descriptions() {
        for bad in ["trailing space ", " leading", "car\rriage", "two\nlines"] {
            let mut spec = base();
            spec.description = bad.to_string();
            assert!(spec.validate().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn tiny_scale_never_grows_a_topology() {
        let one = TopologySpec::Hypercube { dim: 1 };
        assert_eq!(one.scaled(Scale::Tiny).node_count(), one.node_count());
        for spec in registry::all() {
            let tiny = spec.topology.scaled(Scale::Tiny);
            assert!(
                tiny.node_count() <= spec.topology.node_count(),
                "{}: {} -> {}",
                spec.name,
                spec.topology.node_count(),
                tiny.node_count()
            );
        }
    }

    #[test]
    fn tiny_scale_drops_faults_on_vanished_nodes() {
        // The line-shortcut gradient install has one offset per node;
        // shrinking the line must drop the out-of-range faults, not
        // re-aim them (stacking offsets would corrupt the legal
        // 2-kappa-per-edge gradient).
        let spec = registry::find("line-shortcut").expect("built-in");
        let tiny = spec.scaled(Scale::Tiny);
        let n = tiny.topology.node_count();
        assert_eq!(tiny.faults.len(), n, "one fault per surviving node");
        let mut amounts = vec![f64::NAN; n];
        for f in &tiny.faults {
            let FaultSpec::ClockOffset { node, amount, .. } = *f else {
                panic!("line-shortcut uses clock offsets only");
            };
            assert!(node < n);
            assert!(amounts[node].is_nan(), "faults stacked on node {node}");
            amounts[node] = amount;
        }
        // Adjacent offsets keep their original spacing: still a uniform
        // gradient after truncation.
        let step = amounts[0] - amounts[1];
        assert!(step > 0.0);
        for w in amounts.windows(2) {
            assert!((w[0] - w[1] - step).abs() < 1e-12);
        }
    }

    #[test]
    fn churn_burst_scaling_preserves_validity() {
        // The burst geometry constraint couples skew to period/down, so
        // all three must scale together — a spec valid at default must
        // stay valid (same relative geometry) at every scale, even with
        // tight margins.
        let mut spec = base();
        spec.topology = TopologySpec::Ring { n: 8 };
        spec.dynamics = DynamicsSpec::ChurnBurst {
            period: 1.0,
            down: 0.05,
            skew: 0.02,
        };
        spec.validate().unwrap();
        for scale in [Scale::Tiny, Scale::Default, Scale::Full] {
            spec.scaled(scale)
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", scale.name()));
        }
    }

    #[test]
    fn validation_rejects_out_of_range_fault_node() {
        let mut spec = base();
        spec.faults.push(FaultSpec::ClockOffset {
            at: 1.0,
            node: 10_000,
            amount: 0.5,
        });
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_bounds_estimate_bias_to_the_envelope() {
        let mut spec = base();
        spec.faults.push(FaultSpec::EstimateBias {
            at: 1.0,
            node: 0,
            bias: 1.0,
        });
        spec.validate().unwrap();
        spec.faults[0] = FaultSpec::EstimateBias {
            at: 1.0,
            node: 0,
            bias: 1.5,
        };
        assert!(spec.validate().is_err(), "bias beyond epsilon must fail");
        spec.faults[0] = FaultSpec::EstimateBias {
            at: 1.0,
            node: 10_000,
            bias: 0.5,
        };
        assert!(spec.validate().is_err(), "node out of range must fail");
    }

    #[test]
    fn tiny_scale_rescales_and_drops_estimate_bias_faults() {
        let mut spec = base();
        spec.topology = TopologySpec::Line { n: 8 };
        spec.faults = vec![
            FaultSpec::EstimateBias {
                at: 4.0,
                node: 0,
                bias: -1.0,
            },
            FaultSpec::EstimateBias {
                at: 4.0,
                node: 7,
                bias: 1.0,
            },
        ];
        spec.validate().unwrap();
        let tiny = spec.scaled(Scale::Tiny);
        assert_eq!(
            tiny.faults,
            vec![FaultSpec::EstimateBias {
                at: 1.0,
                node: 0,
                bias: -1.0,
            }],
            "time rescaled, vanished-node fault dropped"
        );
    }

    #[test]
    fn validation_rejects_partition_on_random_topology() {
        let mut spec = base();
        spec.topology = TopologySpec::Gnp { n: 16, p: 0.2 };
        spec.dynamics = DynamicsSpec::Partition {
            split: 5.0,
            merge: 10.0,
            skew: 0.001,
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_params_via_params_error() {
        let mut spec = base();
        spec.mu = 0.5; // violates eq. (7)
        assert!(matches!(spec.validate(), Err(ScenarioError::Params(_))));
    }

    #[test]
    fn insertion_chords_skip_existing_edges() {
        let mut spec = base();
        spec.topology = TopologySpec::Ring { n: 8 };
        spec.dynamics = DynamicsSpec::Insertion {
            at: 2.0,
            count: 3,
            skew: 0.002,
        };
        let sched = spec.schedule(0).unwrap();
        // Three antipodal chords, none of which is a ring edge: 2 directed
        // Up events each.
        assert_eq!(sched.events().len(), 6);
    }

    #[test]
    fn tiny_scale_shrinks_everything() {
        let spec = registry::find("churn-storm").expect("built-in");
        let tiny = spec.scaled(Scale::Tiny);
        assert!(tiny.topology.node_count() < spec.topology.node_count());
        assert!(tiny.end_secs() < spec.end_secs() / 2.0);
        assert!(tiny.validate().is_ok());
        // Every built-in stays valid at every scale.
        for s in registry::all() {
            for scale in [Scale::Tiny, Scale::Default, Scale::Full] {
                s.scaled(scale)
                    .validate()
                    .unwrap_or_else(|e| panic!("{} at {}: {e}", s.name, scale.name()));
            }
        }
    }

    #[test]
    fn random_families_vary_with_seed_but_not_within_it() {
        let spec = ScenarioSpec {
            topology: TopologySpec::Gnp { n: 12, p: 0.3 },
            ..base()
        };
        let a = spec.topology.realize(1);
        let b = spec.topology.realize(1);
        let c = spec.topology.realize(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
