//! Parametric scenario families shared by the built-in registry and the
//! experiment harness (`gcs-bench` sizes them per sweep point instead of
//! re-assembling schedules by hand).

use gcs_core::Params;
use gcs_net::EdgeParams;

use crate::spec::{
    DriftSpec, DynamicsSpec, EstimateSpec, FaultSpec, Metric, ScenarioSpec, TopologySpec,
};

/// A neutral starting point: paper parameters (ρ = 1%, µ = 10%), a 10 s
/// warm-up, a 30 s observation window sampled twice a second, global skew
/// as the primary metric, no faults.
#[must_use]
pub fn base(name: &str, topology: TopologySpec) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_string(),
        description: String::new(),
        topology,
        drift: DriftSpec::TwoBlock,
        estimates: EstimateSpec::OracleNone,
        dynamics: DynamicsSpec::Static,
        faults: Vec::new(),
        rho: 0.01,
        mu: 0.1,
        insertion_scale: None,
        g_tilde: None,
        dynamic_estimates: false,
        warmup: 10.0,
        duration: 30.0,
        sample: 0.5,
        metric: Metric::GlobalSkew,
        bench: false,
        tiny_nodes: None,
    }
}

/// A ring of `n` nodes with one antipodal chord appearing at `t = 2 s`
/// under two-block drift — the Theorem 5.25 stabilization workload (the
/// chord connects nodes `0` and `n/2`, so observers know which pair to
/// watch). Used by experiment E4 at every sweep size.
#[must_use]
pub fn ring_chord(n: usize, insertion_scale: f64) -> ScenarioSpec {
    let mut spec = base("ring-chord", TopologySpec::Ring { n });
    spec.description = "Antipodal chord appears on a ring: staged-insertion stabilization \
                        (Theorem 5.25)"
        .to_string();
    spec.dynamics = DynamicsSpec::Insertion {
        at: 2.0,
        count: 1,
        skew: 0.002,
    };
    spec.insertion_scale = Some(insertion_scale);
    spec.warmup = 2.0;
    spec.duration = 60.0;
    spec
}

/// Heavy connectivity-preserving churn over any topology: exponential
/// up/down phases (10 s / 5 s means) on every non-backbone edge. Used by
/// experiment E8 across its topology sweep.
#[must_use]
pub fn churn(name: &str, topology: TopologySpec) -> ScenarioSpec {
    let mut spec = base(name, topology);
    spec.dynamics = DynamicsSpec::Churn {
        mean_up: 10.0,
        mean_down: 5.0,
        skew: 0.004,
        start_up: 0.7,
    };
    spec.insertion_scale = Some(0.02);
    spec.warmup = 5.0;
    spec.duration = 30.0;
    spec
}

/// Correlated churn bursts over any topology: a spanning tree stays up
/// while every other edge goes down *simultaneously* for `down` seconds,
/// every `period` seconds — the adversary the independent-phase
/// [`churn`] preset can never produce, because it forces the staged
/// insertion machinery to re-insert the whole non-backbone edge set at
/// once (the registry's `churn-burst` is the grid instance).
#[must_use]
pub fn churn_burst(name: &str, topology: TopologySpec, period: f64, down: f64) -> ScenarioSpec {
    let mut spec = base(name, topology);
    spec.dynamics = DynamicsSpec::ChurnBurst {
        period,
        down,
        skew: 0.002,
    };
    spec.insertion_scale = Some(0.02);
    spec.warmup = 5.0;
    spec.duration = 30.0;
    spec
}

/// Byzantine-flavoured estimate faults on a ring of `n` nodes: the
/// adversarial *hiding* estimate layer (every edge understates its true
/// skew by up to `ε`, the worst error inequality (1) permits) combined
/// with a script of alternating-sign clock corruptions on spread-out
/// nodes — each injection pulls the network in the opposite direction
/// while the estimates actively mask the damage. The §5.2
/// self-stabilization guarantee must still recover every time.
#[must_use]
pub fn byzantine_est(n: usize, first_at: f64, amount: f64) -> ScenarioSpec {
    let mut spec = base("byzantine-est", TopologySpec::Ring { n });
    spec.description = "Adversarial hiding estimates plus alternating-sign corruption \
                        scripts: Byzantine-flavoured fault recovery (section 5.2)"
        .to_string();
    spec.drift = DriftSpec::RandomConstant;
    spec.estimates = EstimateSpec::OracleHide;
    // Spread-out targets that survive the tiny-scale halving, pulling in
    // alternating directions at staggered times.
    spec.faults = vec![
        FaultSpec::ClockOffset {
            at: first_at,
            node: 0,
            amount,
        },
        FaultSpec::ClockOffset {
            at: first_at * 1.5,
            node: n / 2 - 1,
            amount: -amount,
        },
        FaultSpec::ClockOffset {
            at: first_at * 2.0,
            node: n / 4,
            amount: 0.5 * amount,
        },
    ];
    spec.warmup = 10.0;
    spec.duration = 40.0;
    spec.metric = Metric::FinalGlobalSkew;
    spec
}

/// The canonical worst case at any size: a line of `n` nodes under
/// two-block drift, the Theorem 5.6 shape. Used by experiment E1 at every
/// sweep size (the registry's `line-worstcase` is the `n = 16` instance).
#[must_use]
pub fn line_worstcase(n: usize) -> ScenarioSpec {
    let mut spec = base("line-worstcase", TopologySpec::Line { n });
    spec.description =
        "The canonical worst case: a line with two-block drift (Theorem 5.6 shape)".to_string();
    spec
}

/// A line of `n` nodes under flip-flop drift with adversarial hiding
/// estimates — the local-skew stress test. Used by experiment E3 across
/// its size sweep (the registry's `drift-flip` is the `n = 12` instance).
#[must_use]
pub fn drift_flip(n: usize, period: f64) -> ScenarioSpec {
    let mut spec = base("drift-flip", TopologySpec::Line { n });
    spec.description = "Flip-flop drift with adversarial hiding estimates: the local-skew \
                        stress test (experiment E3)"
        .to_string();
    spec.drift = DriftSpec::FlipFlop { period };
    spec.estimates = EstimateSpec::OracleHide;
    spec.metric = Metric::LocalSkew;
    spec
}

/// A line of `n` nodes whose node-0 clock is corrupted by `amount`
/// seconds at time `at` — the §5.2 self-stabilization workload. Used by
/// experiment E6 across its magnitude sweep (the registry's `self-heal`
/// is the `n = 8`, `amount = 1` instance).
#[must_use]
pub fn self_heal(n: usize, at: f64, amount: f64) -> ScenarioSpec {
    let mut spec = base("self-heal", TopologySpec::Line { n });
    spec.description = "One clock corrupted by a full second: linear-time self-stabilization \
                        (Theorem 5.6 II)"
        .to_string();
    spec.faults = vec![FaultSpec::ClockOffset {
        at,
        node: 0,
        amount,
    }];
    spec.warmup = 10.0;
    spec.duration = 40.0;
    spec.metric = Metric::FinalGlobalSkew;
    spec
}

/// The per-edge weight `κ` the paper's parameters assign a default edge
/// (eq. 9) — what the gradient-install presets use to size a *legal*
/// skew: `2κ` per hop stays below every trigger threshold.
#[must_use]
pub fn default_edge_kappa() -> f64 {
    let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
    let edge = EdgeParams::default();
    params.kappa(edge, edge.epsilon)
}

/// The total skew a legal `2κ`-per-edge gradient installs across a line
/// of `n` nodes — the Theorem 8.1 adversary state the shortcut presets
/// and the A2/A5 ablations build on.
#[must_use]
pub fn gradient_install_skew(n: usize) -> f64 {
    2.0 * default_edge_kappa() * (n - 1) as f64
}

/// The Theorem 8.1 lower-bound construction: a line of `n` nodes carrying
/// a legal `2κ`-per-edge gradient (installed as scripted clock-offset
/// faults at `install_at`, node `i` leading node `i + 1` by `2κ`) that
/// suddenly gains a shortcut between its endpoints at `chord_at`.
/// `G̃` is provisioned at 1.5× the installed skew. Used by experiment E5
/// and ablations A2/A5 (the registry's `line-shortcut` is the `n = 12`
/// instance).
#[must_use]
pub fn shortcut_gradient(
    n: usize,
    insertion_scale: f64,
    chord_at: f64,
    install_at: f64,
) -> ScenarioSpec {
    let per_edge = 2.0 * default_edge_kappa();
    let injected = per_edge * (n - 1) as f64;
    let mut spec = base("line-shortcut", TopologySpec::Line { n });
    spec.description = "Legal Theta(n) gradient gains an endpoint shortcut: the Omega(D) \
                        stabilization lower bound (Theorem 8.1)"
        .to_string();
    spec.dynamics = DynamicsSpec::Shortcut {
        at: chord_at,
        skew: 0.002,
    };
    spec.faults = (0..n)
        .map(|i| FaultSpec::ClockOffset {
            at: install_at,
            node: i,
            amount: per_edge * (n - 1 - i) as f64,
        })
        .collect();
    spec.g_tilde = Some(1.5 * injected);
    spec.insertion_scale = Some(insertion_scale);
    spec.warmup = chord_at;
    spec.duration = 60.0;
    spec.metric = Metric::FinalGlobalSkew;
    spec
}

/// A ring of `n` nodes cut into two halves during `[split, merge]` — the
/// connectivity-requirement workload (experiment E10 and the `partition`
/// example).
#[must_use]
pub fn partition_heal(n: usize, split: f64, merge: f64) -> ScenarioSpec {
    let mut spec = base("partition-heal", TopologySpec::Ring { n });
    spec.description = "Ring cut in half and merged again: cross-cut skew grows at 2*rho \
                        while open, then collapses at the recovery rate"
        .to_string();
    spec.dynamics = DynamicsSpec::Partition {
        split,
        merge,
        skew: 0.002,
    };
    spec.g_tilde = Some(2.0);
    spec.insertion_scale = Some(0.02);
    spec.warmup = 0.0;
    spec.duration = merge + 30.0;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_across_sizes() {
        for n in [8, 16, 32] {
            ring_chord(n, 0.05).validate().unwrap();
            partition_heal(n, 10.0, 40.0).validate().unwrap();
        }
        churn("churn-test", TopologySpec::Grid { w: 4, h: 4 })
            .validate()
            .unwrap();
    }

    #[test]
    fn ring_chord_inserts_the_antipodal_chord() {
        let spec = ring_chord(12, 0.05);
        let sched = spec.schedule(7).unwrap();
        assert_eq!(sched.events().len(), 2); // both directions of (0, 6)
        let ev = sched.events()[0];
        assert_eq!((ev.from.index(), ev.to.index()), (0, 6));
    }
}
