//! Parametric scenario families shared by the built-in registry and the
//! experiment harness (`gcs-bench` sizes them per sweep point instead of
//! re-assembling schedules by hand).

use crate::spec::{DriftSpec, DynamicsSpec, EstimateSpec, Metric, ScenarioSpec, TopologySpec};

/// A neutral starting point: paper parameters (ρ = 1%, µ = 10%), a 10 s
/// warm-up, a 30 s observation window sampled twice a second, global skew
/// as the primary metric, no faults.
#[must_use]
pub fn base(name: &str, topology: TopologySpec) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_string(),
        description: String::new(),
        topology,
        drift: DriftSpec::TwoBlock,
        estimates: EstimateSpec::OracleNone,
        dynamics: DynamicsSpec::Static,
        faults: Vec::new(),
        rho: 0.01,
        mu: 0.1,
        insertion_scale: None,
        g_tilde: None,
        dynamic_estimates: false,
        warmup: 10.0,
        duration: 30.0,
        sample: 0.5,
        metric: Metric::GlobalSkew,
    }
}

/// A ring of `n` nodes with one antipodal chord appearing at `t = 2 s`
/// under two-block drift — the Theorem 5.25 stabilization workload (the
/// chord connects nodes `0` and `n/2`, so observers know which pair to
/// watch). Used by experiment E4 at every sweep size.
#[must_use]
pub fn ring_chord(n: usize, insertion_scale: f64) -> ScenarioSpec {
    let mut spec = base("ring-chord", TopologySpec::Ring { n });
    spec.description = "Antipodal chord appears on a ring: staged-insertion stabilization \
                        (Theorem 5.25)"
        .to_string();
    spec.dynamics = DynamicsSpec::Insertion {
        at: 2.0,
        count: 1,
        skew: 0.002,
    };
    spec.insertion_scale = Some(insertion_scale);
    spec.warmup = 2.0;
    spec.duration = 60.0;
    spec
}

/// Heavy connectivity-preserving churn over any topology: exponential
/// up/down phases (10 s / 5 s means) on every non-backbone edge. Used by
/// experiment E8 across its topology sweep.
#[must_use]
pub fn churn(name: &str, topology: TopologySpec) -> ScenarioSpec {
    let mut spec = base(name, topology);
    spec.dynamics = DynamicsSpec::Churn {
        mean_up: 10.0,
        mean_down: 5.0,
        skew: 0.004,
        start_up: 0.7,
    };
    spec.insertion_scale = Some(0.02);
    spec.warmup = 5.0;
    spec.duration = 30.0;
    spec
}

/// A ring of `n` nodes cut into two halves during `[split, merge]` — the
/// connectivity-requirement workload (experiment E10 and the `partition`
/// example).
#[must_use]
pub fn partition_heal(n: usize, split: f64, merge: f64) -> ScenarioSpec {
    let mut spec = base("partition-heal", TopologySpec::Ring { n });
    spec.description = "Ring cut in half and merged again: cross-cut skew grows at 2*rho \
                        while open, then collapses at the recovery rate"
        .to_string();
    spec.dynamics = DynamicsSpec::Partition {
        split,
        merge,
        skew: 0.002,
    };
    spec.g_tilde = Some(2.0);
    spec.insertion_scale = Some(0.02);
    spec.warmup = 0.0;
    spec.duration = merge + 30.0;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_across_sizes() {
        for n in [8, 16, 32] {
            ring_chord(n, 0.05).validate().unwrap();
            partition_heal(n, 10.0, 40.0).validate().unwrap();
        }
        churn("churn-test", TopologySpec::Grid { w: 4, h: 4 })
            .validate()
            .unwrap();
    }

    #[test]
    fn ring_chord_inserts_the_antipodal_chord() {
        let spec = ring_chord(12, 0.05);
        let sched = spec.schedule(7).unwrap();
        assert_eq!(sched.events().len(), 2); // both directions of (0, 6)
        let ev = sched.events()[0];
        assert_eq!((ev.from.index(), ev.to.index()), (0, 6));
    }
}
