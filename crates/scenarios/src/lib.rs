//! Declarative scenarios for `gradient-clock-sync`.
//!
//! The paper's guarantees are claims over *adversarial dynamic-network
//! scenarios* — churn, insertion, partition, drift flips. This crate makes
//! those scenarios first-class data instead of per-scenario Rust:
//!
//! * [`spec`] — [`ScenarioSpec`]: topology family + size, drift model,
//!   estimate layer, edge-schedule generator, fault injections, parameters,
//!   and the observation plan, compiled through one seam
//!   ([`ScenarioSpec::build`]) into a ready-to-run
//!   [`Simulation`](gcs_core::Simulation);
//! * [`format`] — the line-oriented `.scn` text format (hand-rolled parser
//!   and canonical writer with exact round-trip; grammar in
//!   `scenarios/README.md`);
//! * [`registry`] — ≥ 20 named built-in scenarios spanning
//!   ring/line/grid/torus/geometric/small-world/scale-free/hypercube
//!   topologies and churn-storm / churn-burst / byzantine-est /
//!   flash-join / partition-heal / mobile-swarm / drift-flip dynamics,
//!   including the `bench`-class engine-scale entries (`ring-1k`,
//!   `geometric-4k`) that the default campaigns exclude;
//! * [`presets`] — parametric families shared with the experiment harness;
//! * [`campaign`] — the parallel scenario × seed runner and the
//!   `results/campaign_*.json` trajectory artifact;
//! * [`trend`] — the artifact reader, `gcs-baseline/v2` summaries
//!   (scalar stats + trajectory envelopes + per-scenario tolerances;
//!   legacy v1 files still parse), and the tolerance-gated baseline
//!   comparison CI runs;
//! * [`conformance`] — the paper-bound gate: every scenario × seed driven
//!   through the [`gcs_analysis::oracle`] conformance oracles, exiting
//!   non-zero on any Theorem 5.6 / 5.22 bound violation, streaming over
//!   either engine and optionally in sampled-source mode
//!   ([`ConformanceOptions`]) for conformance at 10⁵-node scale;
//! * [`trendseries`] — the append-only `gcs-trend/v1` JSONL series the
//!   nightly pipeline grows (`trend-append`) and the orientation-aware
//!   windowed regression gate over it (`trend-gate`);
//! * [`bench`] — the sequential engine-throughput harness behind
//!   `gcs-scenarios bench` and the `BENCH_engine.json`
//!   (`gcs-engine-bench/v1`) artifact, plus the exact deterministic
//!   counter gate behind `gcs-scenarios bench-compare`;
//! * [`chaos`] — bit-exact trace replay (a sealed `gcs-trace/v1`
//!   artifact re-materializes its run stand-alone via the embedded
//!   `.scn` record) and the seeded adversarial fault-schedule search
//!   whose best finds ratchet the conformance gates (`gcs-chaos/v1`
//!   logs, `gcs-scenarios replay` / `chaos-search`);
//! * [`telemetry`] — instrumented runs: both engines driven with a
//!   [`gcs_telemetry`] sink attached, the engine-invariant
//!   `gcs-trace/v1` run log behind `gcs-scenarios trace`/`trace-diff`,
//!   and the `gcs-telemetry/v1` metrics artifact behind the
//!   `--telemetry` flag of `run`/`bench`/`conformance`;
//! * the `gcs-scenarios` CLI (`list | validate <dir> | run <name|file> |
//!   bench | bench-compare | trace | trace-diff | replay | chaos-search |
//!   conformance | trend-append | trend-gate | baseline | compare |
//!   export <dir> | show <name>`).
//!
//! # Example
//!
//! ```
//! use gcs_scenarios::{registry, Scale};
//!
//! let spec = registry::find("churn-storm").unwrap().scaled(Scale::Tiny);
//! let mut sim = spec.build(7).unwrap();
//! sim.run_until_secs(spec.end_secs());
//! assert!(sim.snapshot().global_skew().is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod campaign;
pub mod chaos;
pub mod conformance;
pub mod error;
pub mod format;
pub mod json;
pub mod presets;
pub mod registry;
pub mod spec;
pub mod telemetry;
pub mod trend;
pub mod trendseries;

pub use bench::{BenchArtifact, BenchCompareReport, BenchEntry};
pub use campaign::{run_campaign, run_scenario, CampaignRow, ScenarioOutcome};
pub use chaos::{
    chaos_search, frontier_from_log, read_trace, replay_trace, ChaosCandidate, ChaosOptions,
    ChaosResult, ChaosViolation, ReplayOutcome, TraceArtifact, CHAOS_FORMAT,
};
pub use conformance::{run_conformance, run_conformance_with, ConformanceOptions, ConformanceRow};
pub use error::ScenarioError;
pub use spec::{
    DriftSpec, DynamicsSpec, EstimateSpec, FaultSpec, Metric, Scale, ScenarioSpec, TopologySpec,
};
pub use telemetry::{
    bench_instrumented, run_instrumented, run_instrumented_oracle, OracleRide, TelemetryRun,
    TELEMETRY_FORMAT,
};
pub use trend::{
    CampaignArtifact, CompareReport, EnvelopeStats, TrajectoryEnvelope, TrendRow, TrendSummary,
};
pub use trendseries::{
    trend_gate, TrendFinding, TrendGateReport, TrendPoint, DEFAULT_WINDOW, TREND_FORMAT,
};
