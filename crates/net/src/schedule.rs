//! Deterministic scripts of edge dynamics.
//!
//! A [`NetworkSchedule`] is the paper's worst-case adversary made concrete:
//! an initial directed edge set plus a time-ordered list of [`EdgeEvent`]s.
//! The two directions of an undirected edge are scripted separately, offset
//! by at most the edge's detection delay `τ` — this is precisely the
//! asymmetry the model of §3.1 permits.
//!
//! Generators provided here:
//!
//! * [`NetworkSchedule::static_graph`] — all edges of a topology up forever,
//! * [`NetworkSchedule::with_edge_insertion`] — a static base plus extra
//!   edges appearing (and optionally disappearing) at scripted times: the
//!   stabilization experiments E4/E5/E7,
//! * [`NetworkSchedule::churn`] — connectivity-preserving random churn: a
//!   spanning tree stays up forever while every other edge flaps with
//!   exponentially distributed up/down phases (experiment E8).

use rand::Rng;

use gcs_sim::{rng, SimTime};

use crate::graph::{EdgeKey, NodeId};
use crate::topology::Topology;

/// Whether a directed edge appears or disappears.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeEventKind {
    /// The directed edge becomes present (the *from* node discovers it).
    Up,
    /// The directed edge vanishes (the *from* node detects the failure).
    Down,
}

/// A scripted change of one directed edge `(from, to)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeEvent {
    /// When the change happens.
    pub time: SimTime,
    /// The node whose neighbour set changes.
    pub from: NodeId,
    /// The neighbour being added or removed.
    pub to: NodeId,
    /// Added or removed.
    pub kind: EdgeEventKind,
}

/// Options for the connectivity-preserving churn generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnOptions {
    /// Script horizon in seconds; no events are generated past it.
    pub horizon: f64,
    /// Mean duration of an edge's *up* phase (exponential), seconds.
    pub mean_up: f64,
    /// Mean duration of an edge's *down* phase (exponential), seconds.
    pub mean_down: f64,
    /// Maximum offset between the two directions of an up/down transition;
    /// must not exceed the edge's detection delay `τ`.
    pub direction_skew_max: f64,
    /// Probability that a churnable edge starts in the up state.
    pub start_up_probability: f64,
}

impl Default for ChurnOptions {
    fn default() -> Self {
        ChurnOptions {
            horizon: 100.0,
            mean_up: 30.0,
            mean_down: 10.0,
            direction_skew_max: 0.005,
            start_up_probability: 0.7,
        }
    }
}

/// An initial directed edge set plus a time-ordered event script.
///
/// # Example
///
/// ```
/// use gcs_net::{EdgeKey, NetworkSchedule, NodeId, Topology};
/// use gcs_sim::SimTime;
///
/// let ring = Topology::ring(6);
/// let chord = EdgeKey::new(NodeId(0), NodeId(3));
/// let sched = NetworkSchedule::with_edge_insertion(
///     &ring,
///     &[(chord, SimTime::from_secs(10.0))],
///     0.001,
/// );
/// assert_eq!(sched.initial_directed().len(), 2 * ring.edge_count());
/// assert_eq!(sched.events().len(), 2); // both directions of the chord
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetworkSchedule {
    n: usize,
    initial: Vec<(NodeId, NodeId)>,
    events: Vec<EdgeEvent>,
}

impl NetworkSchedule {
    /// An empty schedule on `n` nodes (no edges ever).
    #[must_use]
    pub fn empty(n: usize) -> Self {
        NetworkSchedule {
            n,
            initial: Vec::new(),
            events: Vec::new(),
        }
    }

    /// All edges of `topo` present (in both directions) from `t = 0` on,
    /// with no changes.
    #[must_use]
    pub fn static_graph(topo: &Topology) -> Self {
        let mut s = NetworkSchedule::empty(topo.node_count());
        for &e in topo.edges() {
            s.add_initial_undirected(e);
        }
        s
    }

    /// A static base plus extra undirected edges appearing at scripted
    /// times. The second direction of each insertion is offset by
    /// `direction_skew` seconds (use a value `< τ`).
    #[must_use]
    pub fn with_edge_insertion(
        base: &Topology,
        insertions: &[(EdgeKey, SimTime)],
        direction_skew: f64,
    ) -> Self {
        let mut s = NetworkSchedule::static_graph(base);
        for &(e, t) in insertions {
            s.add_undirected_up(e, t, direction_skew);
        }
        s
    }

    /// Connectivity-preserving random churn over `topo`: a BFS spanning tree
    /// stays up for the whole run; every non-tree edge alternates up/down
    /// phases with exponentially distributed durations.
    ///
    /// # Panics
    ///
    /// Panics if `topo` is disconnected or options are non-positive.
    #[must_use]
    pub fn churn(topo: &Topology, opts: ChurnOptions, seed: u64) -> Self {
        assert!(opts.horizon > 0.0, "horizon must be positive");
        assert!(
            opts.mean_up > 0.0 && opts.mean_down > 0.0,
            "phase means must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&opts.start_up_probability),
            "start_up_probability must be a probability"
        );
        let mut s = NetworkSchedule::empty(topo.node_count());
        let backbone: std::collections::BTreeSet<EdgeKey> =
            topo.spanning_tree().into_iter().collect();
        for &e in &backbone {
            s.add_initial_undirected(e);
        }
        for (idx, &e) in topo.edges().iter().enumerate() {
            if backbone.contains(&e) {
                continue;
            }
            let mut r = rng::stream(seed, "churn", idx as u64);
            // Phases shorter than the direction-detection asymmetry are
            // physically meaningless (and would let a mirrored Up overtake
            // the preceding mirrored Down); clamp them away.
            let min_phase = 2.0 * opts.direction_skew_max;
            let exp = move |r: &mut rand::rngs::StdRng, mean: f64| {
                (-mean * (1.0 - r.gen::<f64>()).ln()).max(min_phase)
            };
            let mut up = r.gen::<f64>() < opts.start_up_probability;
            if up {
                s.add_initial_undirected(e);
            }
            // Walk phase boundaries until the horizon.
            let mut t = exp(&mut r, if up { opts.mean_up } else { opts.mean_down });
            while t < opts.horizon {
                let skew = if opts.direction_skew_max > 0.0 {
                    r.gen_range(0.0..=opts.direction_skew_max)
                } else {
                    0.0
                };
                if up {
                    s.add_undirected_down(e, SimTime::from_secs(t), skew);
                } else {
                    s.add_undirected_up(e, SimTime::from_secs(t), skew);
                }
                up = !up;
                t += exp(&mut r, if up { opts.mean_up } else { opts.mean_down });
            }
        }
        s
    }

    /// A temporary partition: every edge crossing the cut between `left`
    /// and its complement disappears during `[t_split, t_merge]` and
    /// reappears afterwards. Both sides must remain internally connected —
    /// the paper's model demands connectivity *within* what it bounds; the
    /// cross-partition skew is exactly what grows unboundedly while the cut
    /// is open (experiment E10).
    ///
    /// # Panics
    ///
    /// Panics if a side would be disconnected, the cut is empty/full, or
    /// `t_merge <= t_split`.
    #[must_use]
    pub fn partition_and_merge(
        topo: &Topology,
        left: &[NodeId],
        t_split: SimTime,
        t_merge: SimTime,
        direction_skew: f64,
    ) -> Self {
        assert!(t_merge > t_split, "merge must come after the split");
        let left_set: std::collections::BTreeSet<NodeId> = left.iter().copied().collect();
        assert!(
            !left_set.is_empty() && left_set.len() < topo.node_count(),
            "the cut must be a proper, non-empty subset"
        );
        let right: Vec<NodeId> = (0..topo.node_count())
            .map(NodeId::from)
            .filter(|v| !left_set.contains(v))
            .collect();
        assert!(
            topo.induced_connected(left),
            "left side would be internally disconnected"
        );
        assert!(
            topo.induced_connected(&right),
            "right side would be internally disconnected"
        );
        let mut s = NetworkSchedule::static_graph(topo);
        for &e in topo.edges() {
            if left_set.contains(&e.lo()) != left_set.contains(&e.hi()) {
                s.add_undirected_down(e, t_split, direction_skew);
                s.add_undirected_up(e, t_merge, direction_skew);
            }
        }
        s
    }

    /// Marks both directions of `e` present at `t = 0`.
    pub fn add_initial_undirected(&mut self, e: EdgeKey) {
        self.assert_edge(e);
        self.initial.push((e.lo(), e.hi()));
        self.initial.push((e.hi(), e.lo()));
    }

    /// Marks a single direction present at `t = 0`.
    pub fn add_initial_directed(&mut self, from: NodeId, to: NodeId) {
        self.assert_edge(EdgeKey::new(from, to));
        self.initial.push((from, to));
    }

    /// Scripts both directions of `e` to appear: `lo → hi` at `t`,
    /// `hi → lo` at `t + direction_skew`.
    pub fn add_undirected_up(&mut self, e: EdgeKey, t: SimTime, direction_skew: f64) {
        self.assert_edge(e);
        self.push_event(EdgeEvent {
            time: t,
            from: e.lo(),
            to: e.hi(),
            kind: EdgeEventKind::Up,
        });
        self.push_event(EdgeEvent {
            time: t + gcs_sim::SimDuration::from_secs(direction_skew),
            from: e.hi(),
            to: e.lo(),
            kind: EdgeEventKind::Up,
        });
    }

    /// Scripts both directions of `e` to disappear, offset by
    /// `direction_skew`.
    pub fn add_undirected_down(&mut self, e: EdgeKey, t: SimTime, direction_skew: f64) {
        self.assert_edge(e);
        self.push_event(EdgeEvent {
            time: t,
            from: e.lo(),
            to: e.hi(),
            kind: EdgeEventKind::Down,
        });
        self.push_event(EdgeEvent {
            time: t + gcs_sim::SimDuration::from_secs(direction_skew),
            from: e.hi(),
            to: e.lo(),
            kind: EdgeEventKind::Down,
        });
    }

    /// Appends a raw directed event.
    pub fn push_event(&mut self, ev: EdgeEvent) {
        self.assert_edge(EdgeKey::new(ev.from, ev.to));
        self.events.push(ev);
        // Keep sorted; scripts are built mostly in order so this is cheap.
        let mut i = self.events.len() - 1;
        while i > 0 && self.events[i - 1].time > self.events[i].time {
            self.events.swap(i - 1, i);
            i -= 1;
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Directed edges present at `t = 0`.
    #[must_use]
    pub fn initial_directed(&self) -> &[(NodeId, NodeId)] {
        &self.initial
    }

    /// The event script, sorted by time.
    #[must_use]
    pub fn events(&self) -> &[EdgeEvent] {
        &self.events
    }

    /// All undirected edges that are ever present (initial or scripted) —
    /// the edge universe for which parameters must exist.
    #[must_use]
    pub fn edge_universe(&self) -> Vec<EdgeKey> {
        let mut set = std::collections::BTreeSet::new();
        for &(u, v) in &self.initial {
            set.insert(EdgeKey::new(u, v));
        }
        for ev in &self.events {
            set.insert(EdgeKey::new(ev.from, ev.to));
        }
        set.into_iter().collect()
    }

    fn assert_edge(&self, e: EdgeKey) {
        assert!(
            e.hi().index() < self.n,
            "edge {e} references a node outside 0..{}",
            self.n
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_graph_has_no_events() {
        let s = NetworkSchedule::static_graph(&Topology::line(4));
        assert_eq!(s.initial_directed().len(), 6);
        assert!(s.events().is_empty());
        assert_eq!(s.edge_universe().len(), 3);
    }

    #[test]
    fn insertion_scripts_both_directions() {
        let chord = EdgeKey::new(NodeId(0), NodeId(2));
        let s = NetworkSchedule::with_edge_insertion(
            &Topology::line(4),
            &[(chord, SimTime::from_secs(5.0))],
            0.002,
        );
        let evs = s.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].time, SimTime::from_secs(5.0));
        assert_eq!(evs[0].kind, EdgeEventKind::Up);
        assert!((evs[1].time.as_secs() - 5.002).abs() < 1e-12);
        assert_eq!(
            (evs[0].from, evs[0].to, evs[1].from, evs[1].to),
            (NodeId(0), NodeId(2), NodeId(2), NodeId(0))
        );
    }

    #[test]
    fn events_stay_sorted() {
        let mut s = NetworkSchedule::empty(3);
        s.add_undirected_up(
            EdgeKey::new(NodeId(0), NodeId(1)),
            SimTime::from_secs(9.0),
            0.0,
        );
        s.add_undirected_up(
            EdgeKey::new(NodeId(1), NodeId(2)),
            SimTime::from_secs(1.0),
            0.0,
        );
        let times: Vec<f64> = s.events().iter().map(|e| e.time.as_secs()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn churn_keeps_backbone_untouched() {
        let topo = Topology::ring(8);
        let opts = ChurnOptions {
            horizon: 50.0,
            mean_up: 5.0,
            mean_down: 5.0,
            direction_skew_max: 0.001,
            start_up_probability: 0.5,
        };
        let s = NetworkSchedule::churn(&topo, opts, 13);
        let backbone: std::collections::BTreeSet<EdgeKey> =
            topo.spanning_tree().into_iter().collect();
        for ev in s.events() {
            let e = EdgeKey::new(ev.from, ev.to);
            assert!(!backbone.contains(&e), "backbone edge {e} churned");
            assert!(ev.time.as_secs() < 50.0 + 0.001 + 1e-9);
        }
        // Backbone present initially.
        for e in &backbone {
            assert!(s.initial_directed().contains(&(e.lo(), e.hi())));
            assert!(s.initial_directed().contains(&(e.hi(), e.lo())));
        }
    }

    #[test]
    fn churn_is_deterministic() {
        let topo = Topology::grid(3, 3);
        let a = NetworkSchedule::churn(&topo, ChurnOptions::default(), 5);
        let b = NetworkSchedule::churn(&topo, ChurnOptions::default(), 5);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.initial_directed(), b.initial_directed());
    }

    #[test]
    fn churn_alternates_up_down_per_edge() {
        let topo = Topology::ring(6);
        let s = NetworkSchedule::churn(
            &topo,
            ChurnOptions {
                horizon: 200.0,
                mean_up: 3.0,
                mean_down: 3.0,
                direction_skew_max: 0.0,
                start_up_probability: 1.0,
            },
            2,
        );
        use std::collections::HashMap;
        let mut last: HashMap<(NodeId, NodeId), EdgeEventKind> = HashMap::new();
        for ev in s.events() {
            match last.insert((ev.from, ev.to), ev.kind) {
                Some(prev) => {
                    assert_ne!(prev, ev.kind, "same-kind consecutive events on an edge");
                }
                // All edges start up, so the first event must be Down.
                None => assert_eq!(ev.kind, EdgeEventKind::Down),
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn schedule_validates_nodes() {
        let mut s = NetworkSchedule::empty(2);
        s.add_initial_undirected(EdgeKey::new(NodeId(0), NodeId(7)));
    }

    #[test]
    fn partition_cuts_exactly_the_crossing_edges() {
        let topo = Topology::ring(6);
        let left: Vec<NodeId> = (0..3u32).map(NodeId).collect();
        let s = NetworkSchedule::partition_and_merge(
            &topo,
            &left,
            SimTime::from_secs(5.0),
            SimTime::from_secs(10.0),
            0.001,
        );
        // The ring 0-1-2-3-4-5-0 has two crossing edges: {2,3} and {0,5}.
        let downs: Vec<_> = s
            .events()
            .iter()
            .filter(|e| e.kind == EdgeEventKind::Down)
            .collect();
        let ups: Vec<_> = s
            .events()
            .iter()
            .filter(|e| e.kind == EdgeEventKind::Up)
            .collect();
        assert_eq!(downs.len(), 4, "2 undirected crossing edges x 2 directions");
        assert_eq!(ups.len(), 4);
        assert!(downs.iter().all(|e| e.time.as_secs() < 5.1));
        assert!(ups.iter().all(|e| e.time.as_secs() >= 10.0));
    }

    #[test]
    #[should_panic(expected = "internally disconnected")]
    fn partition_rejects_disconnected_sides() {
        let topo = Topology::line(6);
        // {0, 2} is not internally connected on a line.
        let _ = NetworkSchedule::partition_and_merge(
            &topo,
            &[NodeId(0), NodeId(2)],
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
            0.0,
        );
    }

    #[test]
    #[should_panic(expected = "merge must come after")]
    fn partition_rejects_bad_interval() {
        let topo = Topology::ring(4);
        let _ = NetworkSchedule::partition_and_merge(
            &topo,
            &[NodeId(0), NodeId(1)],
            SimTime::from_secs(2.0),
            SimTime::from_secs(1.0),
            0.0,
        );
    }
}
