//! Random-waypoint mobility → dynamic estimate graphs.
//!
//! The paper motivates its model with mobile nodes whose links appear and
//! disappear as they move. This module makes that concrete: nodes perform a
//! random-waypoint walk in the unit square and an (undirected) estimate edge
//! exists while two nodes are within radio range. Hysteresis (connect below
//! `radius`, disconnect above `radius * hysteresis`) prevents link flapping
//! at the range boundary, and the two directions of each transition are
//! offset by a random amount `≤ direction_skew_max` to exercise the
//! asymmetric-detection part of the model.
//!
//! The walk is sampled every `sample_period` seconds; the resulting script is
//! a [`NetworkSchedule`] like any other.

use rand::Rng;

use gcs_sim::{rng, SimTime};

use crate::graph::{EdgeKey, NodeId};
use crate::schedule::NetworkSchedule;

/// Parameters of the random-waypoint walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWaypoint {
    /// Number of nodes.
    pub n: usize,
    /// Radio range as a fraction of the unit square's side.
    pub radius: f64,
    /// Disconnect at `radius * hysteresis`; must be `>= 1`.
    pub hysteresis: f64,
    /// Node speed range `[min, max]` in square-sides per second.
    pub speed: (f64, f64),
    /// Script horizon, seconds.
    pub horizon: f64,
    /// Position sampling period, seconds.
    pub sample_period: f64,
    /// Maximum offset between the two directions of a link transition.
    pub direction_skew_max: f64,
}

impl Default for RandomWaypoint {
    fn default() -> Self {
        RandomWaypoint {
            n: 16,
            radius: 0.35,
            hysteresis: 1.15,
            speed: (0.005, 0.02),
            horizon: 100.0,
            sample_period: 0.5,
            direction_skew_max: 0.002,
        }
    }
}

impl RandomWaypoint {
    /// Generates the mobility-driven schedule.
    ///
    /// Note: mobility alone does not guarantee connectivity; pair the result
    /// with a validator or choose `radius` generously. The returned schedule
    /// reflects geometry faithfully, including temporary partitions.
    ///
    /// # Panics
    ///
    /// Panics if parameters are out of range (`n >= 2`, positive radius and
    /// periods, `hysteresis >= 1`, `0 < speed.0 <= speed.1`).
    #[must_use]
    pub fn generate(&self, seed: u64) -> NetworkSchedule {
        assert!(self.n >= 2, "need at least 2 nodes");
        assert!(self.radius > 0.0, "radius must be positive");
        assert!(self.hysteresis >= 1.0, "hysteresis must be >= 1");
        assert!(
            self.speed.0 > 0.0 && self.speed.0 <= self.speed.1,
            "speed range must satisfy 0 < min <= max"
        );
        assert!(
            self.horizon > 0.0 && self.sample_period > 0.0,
            "horizon and sample_period must be positive"
        );
        assert!(
            self.direction_skew_max < self.sample_period,
            "direction skew must be smaller than the sampling period, or a \
             mirrored transition could overtake the next one"
        );

        let mut walkers: Vec<Walker> = (0..self.n)
            .map(|i| Walker::new(seed, i as u64, self.speed))
            .collect();

        let mut schedule = NetworkSchedule::empty(self.n);
        let mut skew_rng = rng::stream(seed, "mobility-skew", 0);
        // Link state with hysteresis.
        let mut up = vec![false; self.n * self.n];
        let connect = self.radius;
        let disconnect = self.radius * self.hysteresis;

        // Initial positions determine initial edges (no hysteresis at t=0).
        for i in 0..self.n {
            for j in i + 1..self.n {
                if walkers[i].dist(&walkers[j]) <= connect {
                    up[i * self.n + j] = true;
                    schedule.add_initial_undirected(EdgeKey::new(NodeId::from(i), NodeId::from(j)));
                }
            }
        }

        let steps = (self.horizon / self.sample_period).floor() as u64;
        for k in 1..=steps {
            let t = SimTime::from_secs(k as f64 * self.sample_period);
            for w in &mut walkers {
                w.step(self.sample_period);
            }
            for i in 0..self.n {
                for j in i + 1..self.n {
                    let d = walkers[i].dist(&walkers[j]);
                    let idx = i * self.n + j;
                    let e = EdgeKey::new(NodeId::from(i), NodeId::from(j));
                    let skew = if self.direction_skew_max > 0.0 {
                        skew_rng.gen_range(0.0..=self.direction_skew_max)
                    } else {
                        0.0
                    };
                    if up[idx] && d > disconnect {
                        up[idx] = false;
                        schedule.add_undirected_down(e, t, skew);
                    } else if !up[idx] && d <= connect {
                        up[idx] = true;
                        schedule.add_undirected_up(e, t, skew);
                    }
                }
            }
        }
        schedule
    }
}

/// One node's random-waypoint state.
#[derive(Debug, Clone)]
struct Walker {
    pos: (f64, f64),
    target: (f64, f64),
    speed: f64,
    speed_range: (f64, f64),
    rng: rand::rngs::StdRng,
}

impl Walker {
    fn new(seed: u64, index: u64, speed_range: (f64, f64)) -> Self {
        let mut rng = rng::stream(seed, "mobility-walker", index);
        let pos = (rng.gen::<f64>(), rng.gen::<f64>());
        let target = (rng.gen::<f64>(), rng.gen::<f64>());
        let speed = rng.gen_range(speed_range.0..=speed_range.1);
        Walker {
            pos,
            target,
            speed,
            speed_range,
            rng,
        }
    }

    fn dist(&self, other: &Walker) -> f64 {
        let dx = self.pos.0 - other.pos.0;
        let dy = self.pos.1 - other.pos.1;
        (dx * dx + dy * dy).sqrt()
    }

    fn step(&mut self, dt: f64) {
        let mut remaining = self.speed * dt;
        while remaining > 0.0 {
            let dx = self.target.0 - self.pos.0;
            let dy = self.target.1 - self.pos.1;
            let d = (dx * dx + dy * dy).sqrt();
            if d <= remaining {
                // Arrive and pick a fresh waypoint and speed.
                self.pos = self.target;
                remaining -= d;
                self.target = (self.rng.gen::<f64>(), self.rng.gen::<f64>());
                self.speed = self.rng.gen_range(self.speed_range.0..=self.speed_range.1);
                if d == 0.0 {
                    break; // degenerate: target == pos; avoid spinning
                }
            } else {
                self.pos.0 += dx / d * remaining;
                self.pos.1 += dy / d * remaining;
                remaining = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::EdgeEventKind;

    #[test]
    fn generation_is_deterministic() {
        let m = RandomWaypoint {
            n: 8,
            horizon: 30.0,
            ..RandomWaypoint::default()
        };
        let a = m.generate(4);
        let b = m.generate(4);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.initial_directed(), b.initial_directed());
    }

    #[test]
    fn events_alternate_per_direction() {
        let m = RandomWaypoint {
            n: 10,
            radius: 0.3,
            horizon: 120.0,
            speed: (0.02, 0.05),
            ..RandomWaypoint::default()
        };
        let s = m.generate(7);
        use std::collections::HashMap;
        let mut last: HashMap<(NodeId, NodeId), EdgeEventKind> = HashMap::new();
        let initially_up: std::collections::HashSet<_> =
            s.initial_directed().iter().copied().collect();
        for ev in s.events() {
            match last.insert((ev.from, ev.to), ev.kind) {
                Some(prev) => assert_ne!(prev, ev.kind, "non-alternating events"),
                None => {
                    let expect = if initially_up.contains(&(ev.from, ev.to)) {
                        EdgeEventKind::Down
                    } else {
                        EdgeEventKind::Up
                    };
                    assert_eq!(ev.kind, expect, "first event inconsistent with t=0 state");
                }
            }
        }
    }

    #[test]
    fn dense_radius_connects_everything_initially() {
        let m = RandomWaypoint {
            n: 6,
            radius: 2.0, // covers the whole unit square
            horizon: 5.0,
            ..RandomWaypoint::default()
        };
        let s = m.generate(1);
        assert_eq!(s.initial_directed().len(), 6 * 5);
        assert!(s.events().is_empty()); // nothing can ever disconnect
    }

    #[test]
    fn walkers_stay_in_unit_square() {
        let mut w = Walker::new(3, 0, (0.05, 0.1));
        for _ in 0..1000 {
            w.step(1.0);
            assert!((0.0..=1.0).contains(&w.pos.0));
            assert!((0.0..=1.0).contains(&w.pos.1));
        }
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn rejects_bad_radius() {
        let m = RandomWaypoint {
            radius: 0.0,
            ..RandomWaypoint::default()
        };
        let _ = m.generate(0);
    }
}
