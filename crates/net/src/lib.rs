//! Dynamic estimate-graph model for `gradient-clock-sync`.
//!
//! This crate realizes §3.1 of the paper:
//!
//! * [`DynamicGraph`] — the *directed* dynamic estimate graph `G = (V, E(t))`.
//!   A directed edge `(u, v) ∈ E(t)` means `u` currently has a means of
//!   estimating `v`'s clock; the two directions of an undirected estimate
//!   edge may appear/disappear up to `τ` apart.
//! * [`EdgeParams`] / [`EdgeParamsMap`] — the per-edge quantities of the
//!   model: estimate uncertainty `ε`, detection delay `τ`, and the message
//!   delay range `[delay_min, delay_max]` (so `T = delay_max` and the delay
//!   *uncertainty* is `U = delay_max − delay_min`).
//! * [`Topology`] — static graph shapes (line, ring, grid, torus, star,
//!   complete, random) used as the backbone of dynamic schedules.
//! * [`NetworkSchedule`] — a deterministic, seeded script of edge events
//!   (the worst-case adversary of the paper, made concrete), including
//!   connectivity-preserving churn and chord-insertion scenarios.
//! * [`mobility`] — a random-waypoint generator producing schedules from
//!   node movement and radio range.
//! * [`transport`] — message envelopes and the edge-continuity delivery rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod edge;
mod graph;
pub mod mobility;
mod schedule;
mod topology;
pub mod transport;

pub use edge::{EdgeParams, EdgeParamsError, EdgeParamsMap};
pub use graph::{DynamicGraph, EdgeKey, NodeId};
pub use schedule::{ChurnOptions, EdgeEvent, EdgeEventKind, NetworkSchedule};
pub use topology::Topology;
