//! Message envelopes and the delivery rule of §3.1.
//!
//! The model guarantees: if `u` sends a message at time `t` and
//! `u ∈ N_v(t′)` for all `t′ ∈ [t, t + T]`, then `v` receives it within
//! `[t, t + T]`. If the edge is absent at any point in between, delivery is
//! *optional*; this implementation drops such messages (the conservative
//! choice — the algorithm must not rely on lucky deliveries).
//!
//! Delays are sampled uniformly from the edge's `[delay_min, delay_max]`
//! range, so the delay uncertainty `U(M)` equals `delay_max − delay_min` and
//! a receiver may safely credit the sender's clock with
//! `(1 − ρ) · delay_min` of progress (the minimum-transit credit used by the
//! max-estimate flood, Condition 4.3).

use rand::Rng;

use gcs_sim::{SimDuration, SimTime};

use crate::edge::EdgeParams;
use crate::graph::{DynamicGraph, NodeId};

/// A message in flight from `src` to `dst`.
///
/// The payload type is chosen by the layer above (`gcs-core` uses its own
/// enum); the envelope carries everything the delivery rule needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<P> {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Real time the message was sent.
    pub sent_at: SimTime,
    /// Real time the message arrives (if deliverable).
    pub deliver_at: SimTime,
    /// The message body.
    pub payload: P,
}

/// Samples a transit delay for `edge`: uniform in
/// `[delay_min, delay_max]`, or the deterministic `delay_min` for a
/// degenerate (`delay_max == delay_min`) range. One RNG draw per
/// non-degenerate send.
///
/// Inverted ranges (`delay_max < delay_min`) are a construction error —
/// [`EdgeParams::try_new`] and the [`EdgeParamsMap`](crate::EdgeParamsMap)
/// setters reject them — and must never reach the sampler, where they
/// would silently collapse into the deterministic case; debug builds trip
/// here if one slips through a struct literal.
pub fn sample_delay<R: Rng>(rng: &mut R, edge: EdgeParams) -> f64 {
    debug_assert!(
        edge.delay_max >= edge.delay_min,
        "inverted delay range reached the sampler: {edge:?}"
    );
    if edge.delay_max > edge.delay_min {
        rng.gen_range(edge.delay_min..=edge.delay_max)
    } else {
        edge.delay_min
    }
}

/// Samples a transit delay for `edge` and wraps `payload` in an [`Envelope`].
pub fn send<P, R: Rng>(
    rng: &mut R,
    edge: EdgeParams,
    src: NodeId,
    dst: NodeId,
    sent_at: SimTime,
    payload: P,
) -> Envelope<P> {
    let delay = sample_delay(rng, edge);
    Envelope {
        src,
        dst,
        sent_at,
        deliver_at: sent_at + SimDuration::from_secs(delay),
        payload,
    }
}

/// The delivery rule: deliver iff the directed edge `(dst, src)` — i.e.
/// "`src ∈ N_dst`" — has been continuously present since the send time.
///
/// Called at `deliver_at`; the graph must reflect the state at that time.
#[must_use]
pub fn deliverable<P>(graph: &DynamicGraph, env: &Envelope<P>) -> bool {
    graph.continuously_present_since(env.dst, env.src, env.sent_at)
}

/// The minimum-transit clock credit a receiver may add to a piggybacked
/// clock value: the message was demonstrably in transit for at least
/// `delay_min` real seconds, during which the sender's clock advanced at
/// rate at least `1 − ρ`.
#[must_use]
pub fn min_transit_credit(edge: EdgeParams, rho: f64) -> f64 {
    (1.0 - rho) * edge.delay_min
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_sim::rng;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn delay_is_within_edge_range() {
        let edge = EdgeParams::new(0.001, 0.01, 0.004, 0.009);
        let mut r = rng::stream(0, "t", 0);
        for _ in 0..200 {
            let env = send(&mut r, edge, NodeId(0), NodeId(1), t(1.0), ());
            let d = (env.deliver_at - env.sent_at).as_secs();
            assert!((0.004..=0.009).contains(&d), "delay {d} out of range");
        }
    }

    #[test]
    fn degenerate_range_is_deterministic() {
        let edge = EdgeParams::new(0.001, 0.01, 0.005, 0.005);
        let mut r = rng::stream(0, "t", 0);
        let env = send(&mut r, edge, NodeId(0), NodeId(1), t(0.0), ());
        assert!((env.deliver_at.as_secs() - 0.005).abs() < 1e-15);
    }

    #[test]
    fn delivery_requires_continuity() {
        let mut g = DynamicGraph::new(2);
        let env = Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            sent_at: t(5.0),
            deliver_at: t(5.01),
            payload: (),
        };
        // Receiver's edge to the sender came up before the send: deliver.
        g.insert_directed(NodeId(1), NodeId(0), t(1.0));
        assert!(deliverable(&g, &env));
        // Edge flapped after the send: drop.
        g.remove_directed(NodeId(1), NodeId(0));
        g.insert_directed(NodeId(1), NodeId(0), t(5.005));
        assert!(!deliverable(&g, &env));
        // Edge absent entirely: drop.
        g.remove_directed(NodeId(1), NodeId(0));
        assert!(!deliverable(&g, &env));
    }

    #[test]
    fn delivery_boundary_is_closed_at_insertion_and_open_at_removal() {
        // §3.1 presence interval is [up, down): an edge that comes up
        // exactly at the send time counts as present for the whole
        // transit, and a removal applied at `deliver_at` — before the
        // delivery is consulted — drops the message.
        let mut g = DynamicGraph::new(2);
        g.insert_directed(NodeId(1), NodeId(0), t(5.0));
        let env = Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            sent_at: t(5.0),
            deliver_at: t(5.01),
            payload: (),
        };
        // Up exactly at the send instant: deliver.
        assert!(deliverable(&g, &env));
        // Removed by the time the delivery is evaluated: drop, even
        // though the edge was present for the full open interval.
        g.remove_directed(NodeId(1), NodeId(0));
        assert!(!deliverable(&g, &env));
    }

    #[test]
    fn delivery_checks_receiver_side_direction() {
        // Only (src -> dst) present; the rule looks at (dst -> src).
        let mut g = DynamicGraph::new(2);
        g.insert_directed(NodeId(0), NodeId(1), t(0.0));
        let env = Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            sent_at: t(1.0),
            deliver_at: t(1.01),
            payload: (),
        };
        assert!(!deliverable(&g, &env));
    }

    #[test]
    fn credit_is_rate_scaled_min_delay() {
        let edge = EdgeParams::new(0.001, 0.01, 0.004, 0.009);
        assert!((min_transit_credit(edge, 0.01) - 0.99 * 0.004).abs() < 1e-15);
    }
}
