//! The directed dynamic estimate graph.
//!
//! Following §3.1, the network is a fixed node set `V` and a time-varying set
//! of *directed* estimate edges `E(t)`. `(u, v) ∈ E(t)` means that at time
//! `t`, node `u` has a means of obtaining estimates of `v`'s logical clock
//! (`v ∈ N_u(t)` in the paper's notation). The two directions of an
//! undirected estimate edge `{u, v}` are managed independently because nodes
//! may detect link formation/failure up to `τ_{u,v}` apart.
//!
//! Besides current presence, the graph records since when each directed edge
//! has been *continuously* present; the algorithm's handshake (Listing 1) and
//! the transport delivery rule both need exactly this continuity query.

use std::fmt;

use gcs_sim::SimTime;

/// Identifier of a node: a dense index in `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index, for indexing into per-node arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u32::try_from(v).expect("node index exceeds u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An *undirected* edge identity `{u, v}` with `u < v`.
///
/// Edge-level parameters (`ε`, `τ`, delays, weights `κ`) are attached to the
/// undirected edge; presence is per direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeKey {
    a: NodeId,
    b: NodeId,
}

impl EdgeKey {
    /// Creates the canonical key for the pair, normalizing order.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loops carry no information).
    #[must_use]
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self-loop edge {u}");
        if u < v {
            EdgeKey { a: u, b: v }
        } else {
            EdgeKey { a: v, b: u }
        }
    }

    /// The lower-indexed endpoint.
    #[must_use]
    pub fn lo(self) -> NodeId {
        self.a
    }

    /// The higher-indexed endpoint.
    #[must_use]
    pub fn hi(self) -> NodeId {
        self.b
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not an endpoint of this edge.
    #[must_use]
    pub fn other(self, u: NodeId) -> NodeId {
        if u == self.a {
            self.b
        } else if u == self.b {
            self.a
        } else {
            panic!("{u} is not an endpoint of {self}")
        }
    }

    /// Both endpoints, lower first.
    #[must_use]
    pub fn endpoints(self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }
}

impl fmt::Display for EdgeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.a, self.b)
    }
}

/// The directed dynamic graph `G = (V, E(t))` with continuity tracking.
///
/// # Example
///
/// ```
/// use gcs_net::{DynamicGraph, NodeId};
/// use gcs_sim::SimTime;
///
/// let mut g = DynamicGraph::new(3);
/// let (u, v) = (NodeId(0), NodeId(1));
/// g.insert_directed(u, v, SimTime::from_secs(1.0));
/// assert!(g.contains(u, v));
/// assert!(!g.contains(v, u));
/// assert_eq!(g.up_since(u, v), Some(SimTime::from_secs(1.0)));
/// ```
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    /// `adj[u]` maps neighbour `v` to the time `(u, v)` last became present.
    /// Each row is sorted by neighbour id — a flat sorted vector rather than
    /// a tree, because presence checks sit on the per-message hot path and
    /// degrees are small.
    adj: Vec<Vec<(NodeId, SimTime)>>,
}

impl DynamicGraph {
    /// Creates an empty graph on `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        DynamicGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Position of `v` in `u`'s sorted row, or the insertion point.
    fn find(&self, u: NodeId, v: NodeId) -> Result<usize, usize> {
        self.adj[u.index()].binary_search_by_key(&v, |&(w, _)| w)
    }

    /// Inserts the directed edge `(u, v)` at time `t`. Idempotent: if the
    /// edge is already present its `up_since` time is *not* reset.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `u == v`.
    pub fn insert_directed(&mut self, u: NodeId, v: NodeId, t: SimTime) {
        assert_ne!(u, v, "self-loop at {u}");
        assert!(v.index() < self.adj.len(), "unknown node {v}");
        if let Err(pos) = self.find(u, v) {
            self.adj[u.index()].insert(pos, (v, t));
        }
    }

    /// Removes the directed edge `(u, v)`. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn remove_directed(&mut self, u: NodeId, v: NodeId) {
        if let Ok(pos) = self.find(u, v) {
            self.adj[u.index()].remove(pos);
        }
    }

    /// Whether `(u, v) ∈ E(t)` right now, i.e. `v ∈ N_u(t)`.
    #[must_use]
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.find(u, v).is_ok()
    }

    /// Whether both directions of `{u, v}` are present (the paper's
    /// `{u, v} ∈ E(t)`).
    #[must_use]
    pub fn contains_undirected(&self, e: EdgeKey) -> bool {
        self.contains(e.lo(), e.hi()) && self.contains(e.hi(), e.lo())
    }

    /// The time since which `(u, v)` has been continuously present, if it is
    /// present now.
    #[must_use]
    pub fn up_since(&self, u: NodeId, v: NodeId) -> Option<SimTime> {
        self.find(u, v).ok().map(|pos| self.adj[u.index()][pos].1)
    }

    /// Whether `(u, v)` has been continuously present throughout `[t0, now]`.
    #[must_use]
    pub fn continuously_present_since(&self, u: NodeId, v: NodeId, t0: SimTime) -> bool {
        matches!(self.up_since(u, v), Some(up) if up <= t0)
    }

    /// Iterates over `N_u(t)` in ascending node order (deterministic).
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[u.index()].iter().map(|&(v, _)| v)
    }

    /// Out-degree of `u`.
    #[must_use]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u.index()].len()
    }

    /// Iterates over all directed edges `(u, v)` in deterministic order.
    pub fn directed_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, m)| m.iter().map(move |&(v, _)| (NodeId::from(u), v)))
    }

    /// Iterates over the undirected edges present in *both* directions, each
    /// reported once, in deterministic order.
    pub fn undirected_edges(&self) -> impl Iterator<Item = EdgeKey> + '_ {
        self.directed_edges()
            .filter(move |&(u, v)| u < v && self.contains(v, u))
            .map(|(u, v)| EdgeKey::new(u, v))
    }

    /// Whether the *undirected support* (edges present in at least one
    /// direction) connects all nodes. Used by schedule validators: the paper
    /// requires global connectivity over time for a bounded global skew.
    #[must_use]
    pub fn is_support_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        // Materialize the undirected support adjacency once — every
        // directed edge contributes both endpoints — so the traversal is
        // O(n + m). (A reverse-direction `contains` scan per visited node
        // would be O(n²), which the conformance oracle's per-snapshot
        // connectivity probe cannot afford at 10⁵-node scale.)
        let mut support = vec![Vec::new(); n];
        for (u, out) in self.adj.iter().enumerate() {
            for &(v, _) in out {
                support[u].push(v.index() as u32);
                support[v.index()].push(u as u32);
            }
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &w in &support[u] {
                let w = w as usize;
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn edge_key_normalizes() {
        let e = EdgeKey::new(NodeId(5), NodeId(2));
        assert_eq!(e.lo(), NodeId(2));
        assert_eq!(e.hi(), NodeId(5));
        assert_eq!(e, EdgeKey::new(NodeId(2), NodeId(5)));
        assert_eq!(e.other(NodeId(2)), NodeId(5));
        assert_eq!(e.other(NodeId(5)), NodeId(2));
        assert_eq!(e.endpoints(), (NodeId(2), NodeId(5)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_key_rejects_self_loop() {
        let _ = EdgeKey::new(NodeId(1), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_rejects_non_endpoint() {
        let _ = EdgeKey::new(NodeId(0), NodeId(1)).other(NodeId(2));
    }

    #[test]
    fn directed_presence_is_asymmetric() {
        let mut g = DynamicGraph::new(2);
        g.insert_directed(NodeId(0), NodeId(1), t(1.0));
        assert!(g.contains(NodeId(0), NodeId(1)));
        assert!(!g.contains(NodeId(1), NodeId(0)));
        assert!(!g.contains_undirected(EdgeKey::new(NodeId(0), NodeId(1))));
        g.insert_directed(NodeId(1), NodeId(0), t(2.0));
        assert!(g.contains_undirected(EdgeKey::new(NodeId(0), NodeId(1))));
    }

    #[test]
    fn up_since_not_reset_by_reinsert() {
        let mut g = DynamicGraph::new(2);
        g.insert_directed(NodeId(0), NodeId(1), t(1.0));
        g.insert_directed(NodeId(0), NodeId(1), t(5.0));
        assert_eq!(g.up_since(NodeId(0), NodeId(1)), Some(t(1.0)));
        assert!(g.continuously_present_since(NodeId(0), NodeId(1), t(2.0)));
        assert!(!g.continuously_present_since(NodeId(0), NodeId(1), t(0.5)));
    }

    #[test]
    fn removal_clears_continuity() {
        let mut g = DynamicGraph::new(2);
        g.insert_directed(NodeId(0), NodeId(1), t(1.0));
        g.remove_directed(NodeId(0), NodeId(1));
        assert!(!g.contains(NodeId(0), NodeId(1)));
        assert_eq!(g.up_since(NodeId(0), NodeId(1)), None);
        g.insert_directed(NodeId(0), NodeId(1), t(9.0));
        assert_eq!(g.up_since(NodeId(0), NodeId(1)), Some(t(9.0)));
    }

    #[test]
    fn neighbor_iteration_is_sorted() {
        let mut g = DynamicGraph::new(4);
        g.insert_directed(NodeId(0), NodeId(3), t(0.0));
        g.insert_directed(NodeId(0), NodeId(1), t(0.0));
        g.insert_directed(NodeId(0), NodeId(2), t(0.0));
        let ns: Vec<NodeId> = g.neighbors(NodeId(0)).collect();
        assert_eq!(ns, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(g.degree(NodeId(0)), 3);
    }

    #[test]
    fn undirected_edges_reported_once() {
        let mut g = DynamicGraph::new(3);
        g.insert_directed(NodeId(0), NodeId(1), t(0.0));
        g.insert_directed(NodeId(1), NodeId(0), t(0.0));
        g.insert_directed(NodeId(1), NodeId(2), t(0.0)); // one-way only
        let es: Vec<EdgeKey> = g.undirected_edges().collect();
        assert_eq!(es, vec![EdgeKey::new(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn support_connectivity_uses_either_direction() {
        let mut g = DynamicGraph::new(3);
        g.insert_directed(NodeId(0), NodeId(1), t(0.0));
        g.insert_directed(NodeId(2), NodeId(1), t(0.0));
        assert!(g.is_support_connected());
        g.remove_directed(NodeId(2), NodeId(1));
        assert!(!g.is_support_connected());
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(DynamicGraph::new(0).is_support_connected());
        assert!(DynamicGraph::new(1).is_support_connected());
    }
}
