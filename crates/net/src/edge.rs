//! Per-edge model parameters.
//!
//! §3.1 associates three quantities with every undirected estimate edge
//! `{u, v}`:
//!
//! * the estimate uncertainty `ε_{u,v}` of inequality (1),
//! * the detection delay `τ_{u,v}` bounding how far apart the two endpoints
//!   may observe link formation/failure,
//! * the message delay bound `T_{u,v}` — here a range
//!   `[delay_min, delay_max]`, so `T = delay_max` and the delay *uncertainty*
//!   (the `U(M)` of §3.1) is `delay_max − delay_min`.
//!
//! Edges are heterogeneous: [`EdgeParamsMap`] keeps a default plus sparse
//! per-edge overrides, which is what experiment E9 uses.

use std::collections::HashMap;
use std::fmt;

use crate::graph::EdgeKey;

/// Why a set of edge parameters is invalid.
///
/// `EdgeParams`' fields are public (struct literals are handy in tests and
/// experiment tables), so a value can exist without ever passing
/// [`EdgeParams::new`]; every consumer boundary — [`EdgeParamsMap::uniform`],
/// [`EdgeParamsMap::set`] — re-validates with [`EdgeParams::validate`] so an
/// inverted delay range is rejected loudly instead of silently collapsing
/// into the degenerate deterministic-delay case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeParamsError {
    /// `epsilon` must be finite and strictly positive.
    BadEpsilon(f64),
    /// `tau` must be finite and strictly positive.
    BadTau(f64),
    /// `delay_min` must be finite and non-negative.
    BadDelayMin(f64),
    /// `delay_max` must be finite and strictly positive.
    BadDelayMax(f64),
    /// `delay_max < delay_min`: an inverted (empty) delay range.
    InvertedDelayRange {
        /// The configured `delay_min`.
        min: f64,
        /// The configured `delay_max`.
        max: f64,
    },
}

impl fmt::Display for EdgeParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeParamsError::BadEpsilon(v) => write!(f, "epsilon must be > 0, got {v}"),
            EdgeParamsError::BadTau(v) => write!(f, "tau must be > 0, got {v}"),
            EdgeParamsError::BadDelayMin(v) => write!(f, "delay_min must be >= 0, got {v}"),
            EdgeParamsError::BadDelayMax(v) => write!(f, "delay_max must be > 0, got {v}"),
            EdgeParamsError::InvertedDelayRange { min, max } => {
                write!(f, "inverted delay range: delay_max {max} < delay_min {min}")
            }
        }
    }
}

impl std::error::Error for EdgeParamsError {}

/// Model parameters of a single undirected estimate edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeParams {
    /// Estimate uncertainty `ε` enforced by the estimate layer (seconds of
    /// clock value).
    pub epsilon: f64,
    /// Detection delay `τ` (seconds of real time).
    pub tau: f64,
    /// Minimum message delay (seconds).
    pub delay_min: f64,
    /// Maximum message delay `T` (seconds).
    pub delay_max: f64,
}

impl EdgeParams {
    /// Creates edge parameters, validating ranges.
    ///
    /// # Panics
    ///
    /// Panics if any value is non-finite or negative, `epsilon` or `tau` is
    /// zero, or `delay_min > delay_max` (an inverted delay range). Use
    /// [`EdgeParams::try_new`] for a recoverable error instead.
    #[must_use]
    pub fn new(epsilon: f64, tau: f64, delay_min: f64, delay_max: f64) -> Self {
        match EdgeParams::try_new(epsilon, tau, delay_min, delay_max) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates edge parameters, reporting invalid ranges as an error.
    ///
    /// # Errors
    ///
    /// Returns an [`EdgeParamsError`] naming the first offending field;
    /// notably [`EdgeParamsError::InvertedDelayRange`] when
    /// `delay_max < delay_min`.
    pub fn try_new(
        epsilon: f64,
        tau: f64,
        delay_min: f64,
        delay_max: f64,
    ) -> Result<Self, EdgeParamsError> {
        let p = EdgeParams {
            epsilon,
            tau,
            delay_min,
            delay_max,
        };
        p.validate()?;
        Ok(p)
    }

    /// Re-checks the construction invariants — the safety net for values
    /// built as struct literals (the fields are public).
    ///
    /// # Errors
    ///
    /// Returns an [`EdgeParamsError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), EdgeParamsError> {
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err(EdgeParamsError::BadEpsilon(self.epsilon));
        }
        if !(self.tau.is_finite() && self.tau > 0.0) {
            return Err(EdgeParamsError::BadTau(self.tau));
        }
        if !(self.delay_min.is_finite() && self.delay_min >= 0.0) {
            return Err(EdgeParamsError::BadDelayMin(self.delay_min));
        }
        if !(self.delay_max.is_finite() && self.delay_max > 0.0) {
            return Err(EdgeParamsError::BadDelayMax(self.delay_max));
        }
        if self.delay_max < self.delay_min {
            return Err(EdgeParamsError::InvertedDelayRange {
                min: self.delay_min,
                max: self.delay_max,
            });
        }
        Ok(())
    }

    /// The message delay bound `T` of the paper.
    #[must_use]
    pub fn delay_bound(&self) -> f64 {
        self.delay_max
    }

    /// The message delay uncertainty `U = delay_max − delay_min`.
    #[must_use]
    pub fn delay_uncertainty(&self) -> f64 {
        self.delay_max - self.delay_min
    }
}

impl Default for EdgeParams {
    /// A moderate default: `ε = 2 ms`, `τ = 10 ms`, delays in `[2, 10] ms`.
    fn default() -> Self {
        EdgeParams::new(0.002, 0.010, 0.002, 0.010)
    }
}

/// Per-edge parameters: a default plus sparse overrides.
///
/// # Example
///
/// ```
/// use gcs_net::{EdgeKey, EdgeParams, EdgeParamsMap, NodeId};
///
/// let mut map = EdgeParamsMap::uniform(EdgeParams::default());
/// let heavy = EdgeKey::new(NodeId(0), NodeId(1));
/// map.set(heavy, EdgeParams::new(0.02, 0.01, 0.002, 0.01));
/// assert_eq!(map.get(heavy).epsilon, 0.02);
/// assert_eq!(map.get(EdgeKey::new(NodeId(1), NodeId(2))).epsilon, 0.002);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EdgeParamsMap {
    default: EdgeParams,
    overrides: HashMap<EdgeKey, EdgeParams>,
}

impl EdgeParamsMap {
    /// A map where every edge uses `default`.
    ///
    /// # Panics
    ///
    /// Panics if `default` is invalid (see [`EdgeParams::validate`]) — a
    /// struct-literal-built value with an inverted delay range must not
    /// become the silent default of every edge.
    #[must_use]
    pub fn uniform(default: EdgeParams) -> Self {
        if let Err(e) = default.validate() {
            panic!("invalid default edge parameters: {e}");
        }
        EdgeParamsMap {
            default,
            overrides: HashMap::new(),
        }
    }

    /// Sets parameters for one edge.
    ///
    /// # Panics
    ///
    /// Panics if `params` is invalid (see [`EdgeParams::validate`]); use
    /// [`EdgeParamsMap::try_set`] where the parameters come from
    /// unvalidated input.
    pub fn set(&mut self, edge: EdgeKey, params: EdgeParams) {
        if let Err(e) = self.try_set(edge, params) {
            panic!("invalid parameters for edge {edge}: {e}");
        }
    }

    /// Sets parameters for one edge, rejecting invalid values.
    ///
    /// # Errors
    ///
    /// Returns an [`EdgeParamsError`] (and leaves the map unchanged) if
    /// `params` fails [`EdgeParams::validate`].
    pub fn try_set(&mut self, edge: EdgeKey, params: EdgeParams) -> Result<(), EdgeParamsError> {
        params.validate()?;
        self.overrides.insert(edge, params);
        Ok(())
    }

    /// Parameters of `edge` (override or default).
    #[must_use]
    pub fn get(&self, edge: EdgeKey) -> EdgeParams {
        self.overrides.get(&edge).copied().unwrap_or(self.default)
    }

    /// The default applied to edges without overrides.
    #[must_use]
    pub fn default_params(&self) -> EdgeParams {
        self.default
    }

    /// The largest `ε` over default and all overrides.
    #[must_use]
    pub fn max_epsilon(&self) -> f64 {
        self.overrides
            .values()
            .map(|p| p.epsilon)
            .fold(self.default.epsilon, f64::max)
    }

    /// The smallest `ε` over default and all overrides.
    #[must_use]
    pub fn min_epsilon(&self) -> f64 {
        self.overrides
            .values()
            .map(|p| p.epsilon)
            .fold(self.default.epsilon, f64::min)
    }

    /// The largest `τ` over default and all overrides.
    #[must_use]
    pub fn max_tau(&self) -> f64 {
        self.overrides
            .values()
            .map(|p| p.tau)
            .fold(self.default.tau, f64::max)
    }

    /// The largest delay bound `T` over default and all overrides.
    #[must_use]
    pub fn max_delay_bound(&self) -> f64 {
        self.overrides
            .values()
            .map(|p| p.delay_max)
            .fold(self.default.delay_max, f64::max)
    }

    /// Number of per-edge overrides.
    #[must_use]
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    #[test]
    fn derived_delay_quantities() {
        let p = EdgeParams::new(0.001, 0.01, 0.002, 0.012);
        assert!((p.delay_bound() - 0.012).abs() < 1e-15);
        assert!((p.delay_uncertainty() - 0.010).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "delay_max")]
    fn rejects_inverted_delays() {
        let _ = EdgeParams::new(0.001, 0.01, 0.02, 0.01);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_zero_epsilon() {
        let _ = EdgeParams::new(0.0, 0.01, 0.0, 0.01);
    }

    #[test]
    fn overrides_and_extrema() {
        let mut m = EdgeParamsMap::uniform(EdgeParams::new(0.002, 0.01, 0.0, 0.01));
        let e01 = EdgeKey::new(NodeId(0), NodeId(1));
        m.set(e01, EdgeParams::new(0.02, 0.05, 0.0, 0.04));
        assert_eq!(m.get(e01).epsilon, 0.02);
        assert_eq!(m.override_count(), 1);
        assert!((m.max_epsilon() - 0.02).abs() < 1e-15);
        assert!((m.min_epsilon() - 0.002).abs() < 1e-15);
        assert!((m.max_tau() - 0.05).abs() < 1e-15);
        assert!((m.max_delay_bound() - 0.04).abs() < 1e-15);
    }

    #[test]
    fn default_params_are_valid() {
        let p = EdgeParams::default();
        assert!(p.epsilon > 0.0 && p.tau > 0.0 && p.delay_max >= p.delay_min);
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn try_new_names_the_offending_field() {
        assert_eq!(
            EdgeParams::try_new(0.001, 0.01, 0.02, 0.01),
            Err(EdgeParamsError::InvertedDelayRange {
                min: 0.02,
                max: 0.01
            })
        );
        assert_eq!(
            EdgeParams::try_new(0.0, 0.01, 0.0, 0.01),
            Err(EdgeParamsError::BadEpsilon(0.0))
        );
        assert!(matches!(
            EdgeParams::try_new(0.001, f64::NAN, 0.0, 0.01),
            Err(EdgeParamsError::BadTau(t)) if t.is_nan()
        ));
        assert_eq!(
            EdgeParams::try_new(0.001, 0.01, -1.0, 0.01),
            Err(EdgeParamsError::BadDelayMin(-1.0))
        );
        assert_eq!(
            EdgeParams::try_new(0.001, 0.01, 0.0, 0.0),
            Err(EdgeParamsError::BadDelayMax(0.0))
        );
    }

    #[test]
    fn try_set_rejects_inverted_range_and_leaves_map_unchanged() {
        let mut m = EdgeParamsMap::uniform(EdgeParams::default());
        let e01 = EdgeKey::new(NodeId(0), NodeId(1));
        // A struct literal sidesteps `new`'s validation; the map must not.
        let inverted = EdgeParams {
            epsilon: 0.001,
            tau: 0.01,
            delay_min: 0.02,
            delay_max: 0.01,
        };
        let err = m.try_set(e01, inverted).unwrap_err();
        assert!(matches!(err, EdgeParamsError::InvertedDelayRange { .. }));
        assert!(err.to_string().contains("inverted delay range"));
        assert_eq!(m.override_count(), 0);
        assert_eq!(m.get(e01), EdgeParams::default());
    }

    #[test]
    #[should_panic(expected = "inverted delay range")]
    fn set_panics_on_inverted_range() {
        let mut m = EdgeParamsMap::uniform(EdgeParams::default());
        m.set(
            EdgeKey::new(NodeId(0), NodeId(1)),
            EdgeParams {
                epsilon: 0.001,
                tau: 0.01,
                delay_min: 0.02,
                delay_max: 0.01,
            },
        );
    }

    #[test]
    #[should_panic(expected = "invalid default edge parameters")]
    fn uniform_rejects_invalid_default() {
        let _ = EdgeParamsMap::uniform(EdgeParams {
            epsilon: 0.001,
            tau: 0.01,
            delay_min: 0.02,
            delay_max: 0.01,
        });
    }
}
