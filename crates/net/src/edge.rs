//! Per-edge model parameters.
//!
//! §3.1 associates three quantities with every undirected estimate edge
//! `{u, v}`:
//!
//! * the estimate uncertainty `ε_{u,v}` of inequality (1),
//! * the detection delay `τ_{u,v}` bounding how far apart the two endpoints
//!   may observe link formation/failure,
//! * the message delay bound `T_{u,v}` — here a range
//!   `[delay_min, delay_max]`, so `T = delay_max` and the delay *uncertainty*
//!   (the `U(M)` of §3.1) is `delay_max − delay_min`.
//!
//! Edges are heterogeneous: [`EdgeParamsMap`] keeps a default plus sparse
//! per-edge overrides, which is what experiment E9 uses.

use std::collections::HashMap;

use crate::graph::EdgeKey;

/// Model parameters of a single undirected estimate edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeParams {
    /// Estimate uncertainty `ε` enforced by the estimate layer (seconds of
    /// clock value).
    pub epsilon: f64,
    /// Detection delay `τ` (seconds of real time).
    pub tau: f64,
    /// Minimum message delay (seconds).
    pub delay_min: f64,
    /// Maximum message delay `T` (seconds).
    pub delay_max: f64,
}

impl EdgeParams {
    /// Creates edge parameters, validating ranges.
    ///
    /// # Panics
    ///
    /// Panics if any value is non-finite or negative, `epsilon` or `tau` is
    /// zero, or `delay_min > delay_max`.
    #[must_use]
    pub fn new(epsilon: f64, tau: f64, delay_min: f64, delay_max: f64) -> Self {
        assert!(epsilon.is_finite() && epsilon > 0.0, "epsilon must be > 0");
        assert!(tau.is_finite() && tau > 0.0, "tau must be > 0");
        assert!(
            delay_min.is_finite() && delay_min >= 0.0,
            "delay_min must be >= 0"
        );
        assert!(
            delay_max.is_finite() && delay_max >= delay_min && delay_max > 0.0,
            "delay_max must be >= delay_min and > 0"
        );
        EdgeParams {
            epsilon,
            tau,
            delay_min,
            delay_max,
        }
    }

    /// The message delay bound `T` of the paper.
    #[must_use]
    pub fn delay_bound(&self) -> f64 {
        self.delay_max
    }

    /// The message delay uncertainty `U = delay_max − delay_min`.
    #[must_use]
    pub fn delay_uncertainty(&self) -> f64 {
        self.delay_max - self.delay_min
    }
}

impl Default for EdgeParams {
    /// A moderate default: `ε = 2 ms`, `τ = 10 ms`, delays in `[2, 10] ms`.
    fn default() -> Self {
        EdgeParams::new(0.002, 0.010, 0.002, 0.010)
    }
}

/// Per-edge parameters: a default plus sparse overrides.
///
/// # Example
///
/// ```
/// use gcs_net::{EdgeKey, EdgeParams, EdgeParamsMap, NodeId};
///
/// let mut map = EdgeParamsMap::uniform(EdgeParams::default());
/// let heavy = EdgeKey::new(NodeId(0), NodeId(1));
/// map.set(heavy, EdgeParams::new(0.02, 0.01, 0.002, 0.01));
/// assert_eq!(map.get(heavy).epsilon, 0.02);
/// assert_eq!(map.get(EdgeKey::new(NodeId(1), NodeId(2))).epsilon, 0.002);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EdgeParamsMap {
    default: EdgeParams,
    overrides: HashMap<EdgeKey, EdgeParams>,
}

impl EdgeParamsMap {
    /// A map where every edge uses `default`.
    #[must_use]
    pub fn uniform(default: EdgeParams) -> Self {
        EdgeParamsMap {
            default,
            overrides: HashMap::new(),
        }
    }

    /// Sets parameters for one edge.
    pub fn set(&mut self, edge: EdgeKey, params: EdgeParams) {
        self.overrides.insert(edge, params);
    }

    /// Parameters of `edge` (override or default).
    #[must_use]
    pub fn get(&self, edge: EdgeKey) -> EdgeParams {
        self.overrides.get(&edge).copied().unwrap_or(self.default)
    }

    /// The default applied to edges without overrides.
    #[must_use]
    pub fn default_params(&self) -> EdgeParams {
        self.default
    }

    /// The largest `ε` over default and all overrides.
    #[must_use]
    pub fn max_epsilon(&self) -> f64 {
        self.overrides
            .values()
            .map(|p| p.epsilon)
            .fold(self.default.epsilon, f64::max)
    }

    /// The smallest `ε` over default and all overrides.
    #[must_use]
    pub fn min_epsilon(&self) -> f64 {
        self.overrides
            .values()
            .map(|p| p.epsilon)
            .fold(self.default.epsilon, f64::min)
    }

    /// The largest `τ` over default and all overrides.
    #[must_use]
    pub fn max_tau(&self) -> f64 {
        self.overrides
            .values()
            .map(|p| p.tau)
            .fold(self.default.tau, f64::max)
    }

    /// The largest delay bound `T` over default and all overrides.
    #[must_use]
    pub fn max_delay_bound(&self) -> f64 {
        self.overrides
            .values()
            .map(|p| p.delay_max)
            .fold(self.default.delay_max, f64::max)
    }

    /// Number of per-edge overrides.
    #[must_use]
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    #[test]
    fn derived_delay_quantities() {
        let p = EdgeParams::new(0.001, 0.01, 0.002, 0.012);
        assert!((p.delay_bound() - 0.012).abs() < 1e-15);
        assert!((p.delay_uncertainty() - 0.010).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "delay_max")]
    fn rejects_inverted_delays() {
        let _ = EdgeParams::new(0.001, 0.01, 0.02, 0.01);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_zero_epsilon() {
        let _ = EdgeParams::new(0.0, 0.01, 0.0, 0.01);
    }

    #[test]
    fn overrides_and_extrema() {
        let mut m = EdgeParamsMap::uniform(EdgeParams::new(0.002, 0.01, 0.0, 0.01));
        let e01 = EdgeKey::new(NodeId(0), NodeId(1));
        m.set(e01, EdgeParams::new(0.02, 0.05, 0.0, 0.04));
        assert_eq!(m.get(e01).epsilon, 0.02);
        assert_eq!(m.override_count(), 1);
        assert!((m.max_epsilon() - 0.02).abs() < 1e-15);
        assert!((m.min_epsilon() - 0.002).abs() < 1e-15);
        assert!((m.max_tau() - 0.05).abs() < 1e-15);
        assert!((m.max_delay_bound() - 0.04).abs() < 1e-15);
    }

    #[test]
    fn default_params_are_valid() {
        let p = EdgeParams::default();
        assert!(p.epsilon > 0.0 && p.tau > 0.0 && p.delay_max >= p.delay_min);
    }
}
