//! Static graph shapes.
//!
//! A [`Topology`] is the *backbone* of a dynamic scenario: the set of
//! potential undirected estimate edges. Dynamic behaviour (churn, chord
//! insertion, mobility) is layered on top by
//! [`NetworkSchedule`](crate::NetworkSchedule).
//!
//! Random generators repair connectivity if needed (the paper requires the
//! network to remain connected over time for the global-skew bound to hold),
//! and every generator is deterministic in its seed.

use std::collections::{BTreeSet, HashMap};

use rand::Rng;

use gcs_sim::rng;

use crate::graph::{EdgeKey, NodeId};

/// A named static graph on `n` nodes.
///
/// # Example
///
/// ```
/// use gcs_net::Topology;
///
/// let line = Topology::line(5);
/// assert_eq!(line.node_count(), 5);
/// assert_eq!(line.edge_count(), 4);
/// assert!(line.is_connected());
/// assert_eq!(line.hop_diameter(), Some(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    edges: Vec<EdgeKey>,
    name: String,
}

impl Topology {
    /// Builds a topology from an explicit edge list.
    ///
    /// Duplicate edges are removed; the edge list is kept sorted for
    /// determinism.
    ///
    /// # Panics
    ///
    /// Panics if any edge references a node `>= n`.
    #[must_use]
    pub fn from_edges(name: impl Into<String>, n: usize, edges: Vec<EdgeKey>) -> Self {
        let set: BTreeSet<EdgeKey> = edges.into_iter().collect();
        for e in &set {
            assert!(
                e.hi().index() < n,
                "edge {e} references a node outside 0..{n}"
            );
        }
        Topology {
            n,
            edges: set.into_iter().collect(),
            name: name.into(),
        }
    }

    /// A path `v0 — v1 — … — v(n−1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn line(n: usize) -> Self {
        assert!(n >= 2, "a line needs at least 2 nodes");
        let edges = (0..n - 1)
            .map(|i| EdgeKey::new(NodeId::from(i), NodeId::from(i + 1)))
            .collect();
        Topology::from_edges(format!("line({n})"), n, edges)
    }

    /// A cycle on `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    #[must_use]
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 nodes");
        let mut edges: Vec<EdgeKey> = (0..n - 1)
            .map(|i| EdgeKey::new(NodeId::from(i), NodeId::from(i + 1)))
            .collect();
        edges.push(EdgeKey::new(NodeId::from(n - 1), NodeId::from(0usize)));
        Topology::from_edges(format!("ring({n})"), n, edges)
    }

    /// A `w × h` grid with 4-neighbourhood.
    ///
    /// # Panics
    ///
    /// Panics if `w * h < 2`.
    #[must_use]
    pub fn grid(w: usize, h: usize) -> Self {
        assert!(w * h >= 2, "a grid needs at least 2 nodes");
        let mut edges = Vec::new();
        let id = |x: usize, y: usize| NodeId::from(y * w + x);
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push(EdgeKey::new(id(x, y), id(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push(EdgeKey::new(id(x, y), id(x, y + 1)));
                }
            }
        }
        Topology::from_edges(format!("grid({w}x{h})"), w * h, edges)
    }

    /// A `w × h` torus (grid with wraparound).
    ///
    /// # Panics
    ///
    /// Panics if `w < 3` or `h < 3` (smaller tori create parallel edges).
    #[must_use]
    pub fn torus(w: usize, h: usize) -> Self {
        assert!(w >= 3 && h >= 3, "a torus needs w, h >= 3");
        let mut edges = Vec::new();
        let id = |x: usize, y: usize| NodeId::from(y * w + x);
        for y in 0..h {
            for x in 0..w {
                edges.push(EdgeKey::new(id(x, y), id((x + 1) % w, y)));
                edges.push(EdgeKey::new(id(x, y), id(x, (y + 1) % h)));
            }
        }
        Topology::from_edges(format!("torus({w}x{h})"), w * h, edges)
    }

    /// A star: node 0 is the hub.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn star(n: usize) -> Self {
        assert!(n >= 2, "a star needs at least 2 nodes");
        let edges = (1..n)
            .map(|i| EdgeKey::new(NodeId::from(0usize), NodeId::from(i)))
            .collect();
        Topology::from_edges(format!("star({n})"), n, edges)
    }

    /// The complete graph on `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn complete(n: usize) -> Self {
        assert!(n >= 2, "a complete graph needs at least 2 nodes");
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                edges.push(EdgeKey::new(NodeId::from(i), NodeId::from(j)));
            }
        }
        Topology::from_edges(format!("complete({n})"), n, edges)
    }

    /// The `dim`-dimensional hypercube: `2^dim` nodes, an edge between
    /// every pair of ids differing in exactly one bit. The log-diameter
    /// family (`hop_diameter == dim`) the gradient bound is most sensitive
    /// to: distances grow like `log n`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `dim > 16`.
    #[must_use]
    pub fn hypercube(dim: u32) -> Self {
        assert!(dim >= 1, "a hypercube needs dimension >= 1");
        assert!(dim <= 16, "dimension {dim} too large (2^dim nodes)");
        let n = 1usize << dim;
        let mut edges = Vec::with_capacity(n * dim as usize / 2);
        for v in 0..n {
            for b in 0..dim {
                let u = v ^ (1 << b);
                if v < u {
                    edges.push(EdgeKey::new(NodeId::from(v), NodeId::from(u)));
                }
            }
        }
        Topology::from_edges(format!("hypercube({dim})"), n, edges)
    }

    /// An Erdős–Rényi `G(n, p)` graph, repaired to be connected by linking
    /// components along a random spanning chain if necessary.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `p ∉ [0, 1]`.
    #[must_use]
    pub fn random_gnp(n: usize, p: f64, seed: u64) -> Self {
        assert!(n >= 2, "G(n, p) needs at least 2 nodes");
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        let mut r = rng::stream(seed, "topology-gnp", 0);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                if r.gen::<f64>() < p {
                    edges.push(EdgeKey::new(NodeId::from(i), NodeId::from(j)));
                }
            }
        }
        let mut topo = Topology::from_edges(format!("gnp({n},{p})"), n, edges);
        topo.repair_connectivity(seed);
        topo
    }

    /// A random geometric graph: `n` points uniform in the unit square,
    /// edges between pairs within `radius`; repaired to be connected.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `radius <= 0`.
    #[must_use]
    pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Self {
        assert!(n >= 2, "a geometric graph needs at least 2 nodes");
        assert!(radius > 0.0, "radius must be positive");
        let mut r = rng::stream(seed, "topology-geo", 0);
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (r.gen::<f64>(), r.gen::<f64>())).collect();
        // Spatial hash with cell size = radius: candidate pairs only come
        // from the 3×3 cell neighbourhood, taking edge discovery from
        // O(n²) to O(n + m) for the sparse radii actually used. The same
        // distance test on the same points yields the exact edge set the
        // all-pairs scan produced (`from_edges` sorts, so emit order is
        // irrelevant).
        let cells = ((1.0 / radius).floor() as usize).clamp(1, 1 << 14);
        let cell_of = |p: (f64, f64)| {
            let cx = ((p.0 * cells as f64) as usize).min(cells - 1);
            let cy = ((p.1 * cells as f64) as usize).min(cells - 1);
            (cx, cy)
        };
        let mut buckets: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        for (i, &p) in pts.iter().enumerate() {
            buckets.entry(cell_of(p)).or_default().push(i);
        }
        let mut edges = Vec::new();
        for (&(cx, cy), members) in &buckets {
            for &i in members {
                for nx in cx.saturating_sub(1)..=(cx + 1).min(cells - 1) {
                    for ny in cy.saturating_sub(1)..=(cy + 1).min(cells - 1) {
                        let Some(neighbours) = buckets.get(&(nx, ny)) else {
                            continue;
                        };
                        for &j in neighbours {
                            if j <= i {
                                continue;
                            }
                            let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
                            if (dx * dx + dy * dy).sqrt() <= radius {
                                edges.push(EdgeKey::new(NodeId::from(i), NodeId::from(j)));
                            }
                        }
                    }
                }
            }
        }
        let mut topo = Topology::from_edges(format!("geometric({n},{radius})"), n, edges);
        topo.repair_connectivity(seed);
        topo
    }

    /// A Watts–Strogatz small world: a ring lattice where each node links
    /// to its `k/2` nearest neighbours per side, with each edge rewired to
    /// a random target with probability `beta`; repaired to be connected.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`, `k` is odd or `>= n`, or `beta ∉ [0, 1]`.
    #[must_use]
    pub fn small_world(n: usize, k: usize, beta: f64, seed: u64) -> Self {
        assert!(n >= 4, "a small world needs at least 4 nodes");
        assert!(
            k.is_multiple_of(2) && k >= 2 && k < n,
            "k must be even, 2 <= k < n"
        );
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
        let mut r = rng::stream(seed, "topology-ws", 0);
        let mut set = BTreeSet::new();
        for i in 0..n {
            for j in 1..=k / 2 {
                let mut a = NodeId::from(i);
                let mut b = NodeId::from((i + j) % n);
                if r.gen::<f64>() < beta {
                    // Rewire to a uniform non-self target (duplicates are
                    // deduplicated by the set; slight degree variance is
                    // inherent to the model).
                    let mut t = r.gen_range(0..n);
                    while t == i {
                        t = r.gen_range(0..n);
                    }
                    a = NodeId::from(i);
                    b = NodeId::from(t);
                }
                set.insert(EdgeKey::new(a, b));
            }
        }
        let mut topo = Topology::from_edges(
            format!("small-world({n},{k},{beta})"),
            n,
            set.into_iter().collect(),
        );
        topo.repair_connectivity(seed);
        topo
    }

    /// A Barabási–Albert scale-free graph: nodes arrive one at a time and
    /// attach `m` edges preferentially to high-degree nodes. Connected by
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `n <= m`.
    #[must_use]
    pub fn scale_free(n: usize, m: usize, seed: u64) -> Self {
        assert!(m >= 1, "attachment count must be positive");
        assert!(n > m, "need more nodes than attachments");
        let mut r = rng::stream(seed, "topology-ba", 0);
        let mut set = BTreeSet::new();
        // Degree-proportional sampling via the repeated-endpoints trick.
        let mut endpoints: Vec<usize> = Vec::new();
        // Seed clique over the first m+1 nodes.
        for i in 0..=m {
            for j in i + 1..=m {
                set.insert(EdgeKey::new(NodeId::from(i), NodeId::from(j)));
                endpoints.push(i);
                endpoints.push(j);
            }
        }
        for v in m + 1..n {
            let mut chosen = BTreeSet::new();
            while chosen.len() < m {
                let t = endpoints[r.gen_range(0..endpoints.len())];
                if t != v {
                    chosen.insert(t);
                }
            }
            for t in chosen {
                set.insert(EdgeKey::new(NodeId::from(v), NodeId::from(t)));
                endpoints.push(v);
                endpoints.push(t);
            }
        }
        Topology::from_edges(format!("scale-free({n},{m})"), n, set.into_iter().collect())
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The undirected edges, sorted.
    #[must_use]
    pub fn edges(&self) -> &[EdgeKey] {
        &self.edges
    }

    /// Human-readable name, e.g. `"line(8)"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adjacency lists (sorted), for algorithms over the topology.
    #[must_use]
    pub fn adjacency(&self) -> Vec<Vec<NodeId>> {
        let mut adj = vec![Vec::new(); self.n];
        for e in &self.edges {
            adj[e.lo().index()].push(e.hi());
            adj[e.hi().index()].push(e.lo());
        }
        adj
    }

    /// Whether the graph is connected.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.component_representatives().len() <= 1
    }

    /// BFS hop distances from `src` (`usize::MAX` for unreachable nodes).
    #[must_use]
    pub fn hop_distances(&self, src: NodeId) -> Vec<usize> {
        let adj = self.adjacency();
        let mut dist = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        dist[src.index()] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u.index()] {
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// The hop diameter, or `None` if the graph is disconnected.
    #[must_use]
    pub fn hop_diameter(&self) -> Option<usize> {
        let mut best = 0;
        for u in 0..self.n {
            let d = self.hop_distances(NodeId::from(u));
            let m = *d.iter().max()?;
            if m == usize::MAX {
                return None;
            }
            best = best.max(m);
        }
        Some(best)
    }

    /// A spanning tree (BFS from node 0), used as the always-up backbone of
    /// churn schedules.
    ///
    /// # Panics
    ///
    /// Panics if the topology is disconnected.
    #[must_use]
    pub fn spanning_tree(&self) -> Vec<EdgeKey> {
        assert!(self.is_connected(), "spanning tree of a disconnected graph");
        let adj = self.adjacency();
        let mut seen = vec![false; self.n];
        let mut tree = Vec::with_capacity(self.n.saturating_sub(1));
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(NodeId::from(0usize));
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u.index()] {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    tree.push(EdgeKey::new(u, v));
                    queue.push_back(v);
                }
            }
        }
        tree
    }

    /// Renders the topology in Graphviz DOT format (for quick visual
    /// inspection: `cargo run … | dot -Tsvg`).
    #[must_use]
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "graph \"{}\" {{", self.name);
        let _ = writeln!(out, "  layout=neato; node [shape=circle];");
        for i in 0..self.n {
            let _ = writeln!(out, "  v{i};");
        }
        for e in &self.edges {
            let _ = writeln!(out, "  v{} -- v{};", e.lo().index(), e.hi().index());
        }
        out.push_str("}\n");
        out
    }

    /// Whether the subgraph induced by `nodes` is connected (used to
    /// validate partition schedules: each side must stay connected, as the
    /// paper's global-skew bound requires connectivity over time).
    #[must_use]
    pub fn induced_connected(&self, nodes: &[NodeId]) -> bool {
        if nodes.len() <= 1 {
            return true;
        }
        let inside: std::collections::BTreeSet<NodeId> = nodes.iter().copied().collect();
        let adj = self.adjacency();
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![nodes[0]];
        seen.insert(nodes[0]);
        while let Some(u) = stack.pop() {
            for &v in &adj[u.index()] {
                if inside.contains(&v) && seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        seen.len() == inside.len()
    }

    /// One representative node per connected component.
    fn component_representatives(&self) -> Vec<NodeId> {
        let adj = self.adjacency();
        let mut seen = vec![false; self.n];
        let mut reps = Vec::new();
        for s in 0..self.n {
            if seen[s] {
                continue;
            }
            reps.push(NodeId::from(s));
            let mut stack = vec![s];
            seen[s] = true;
            while let Some(u) = stack.pop() {
                for &v in &adj[u] {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        stack.push(v.index());
                    }
                }
            }
        }
        reps
    }

    /// Adds edges chaining component representatives together so the graph
    /// becomes connected. No-op when already connected.
    fn repair_connectivity(&mut self, seed: u64) {
        let reps = self.component_representatives();
        if reps.len() <= 1 {
            return;
        }
        let mut r = rng::stream(seed, "topology-repair", 0);
        let mut set: BTreeSet<EdgeKey> = self.edges.iter().copied().collect();
        // Chain components in a random order to avoid a fixed hub bias.
        let mut order = reps;
        for i in (1..order.len()).rev() {
            order.swap(i, r.gen_range(0..=i));
        }
        for w in order.windows(2) {
            set.insert(EdgeKey::new(w[0], w[1]));
        }
        self.edges = set.into_iter().collect();
        debug_assert!(self.is_connected());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_shape() {
        let t = Topology::line(4);
        assert_eq!(t.edge_count(), 3);
        assert!(t.is_connected());
        assert_eq!(t.hop_diameter(), Some(3));
        assert_eq!(t.name(), "line(4)");
    }

    #[test]
    fn ring_shape() {
        let t = Topology::ring(6);
        assert_eq!(t.edge_count(), 6);
        assert_eq!(t.hop_diameter(), Some(3));
    }

    #[test]
    fn grid_shape() {
        let t = Topology::grid(3, 3);
        assert_eq!(t.node_count(), 9);
        assert_eq!(t.edge_count(), 12);
        assert_eq!(t.hop_diameter(), Some(4));
    }

    #[test]
    fn torus_shape() {
        let t = Topology::torus(4, 4);
        assert_eq!(t.node_count(), 16);
        assert_eq!(t.edge_count(), 32);
        assert_eq!(t.hop_diameter(), Some(4));
    }

    #[test]
    fn star_and_complete() {
        assert_eq!(Topology::star(5).hop_diameter(), Some(2));
        let k = Topology::complete(5);
        assert_eq!(k.edge_count(), 10);
        assert_eq!(k.hop_diameter(), Some(1));
    }

    #[test]
    fn hypercube_shape() {
        let t = Topology::hypercube(4);
        assert_eq!(t.node_count(), 16);
        // n * dim / 2 edges, every node of degree dim.
        assert_eq!(t.edge_count(), 32);
        assert!(t.is_connected());
        assert_eq!(t.hop_diameter(), Some(4));
        for adj in t.adjacency() {
            assert_eq!(adj.len(), 4);
        }
        assert_eq!(t.name(), "hypercube(4)");
        // Hop distance equals Hamming distance to the antipode.
        let d = t.hop_distances(NodeId(0));
        assert_eq!(d[15], 4);
        assert_eq!(d[0b0101], 2);
    }

    #[test]
    fn hypercube_dim_one_is_an_edge() {
        let t = Topology::hypercube(1);
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.hop_diameter(), Some(1));
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn hypercube_rejects_dim_zero() {
        let _ = Topology::hypercube(0);
    }

    #[test]
    fn gnp_is_connected_and_deterministic() {
        let a = Topology::random_gnp(20, 0.05, 7);
        let b = Topology::random_gnp(20, 0.05, 7);
        assert_eq!(a, b);
        assert!(a.is_connected());
    }

    #[test]
    fn sparse_gnp_gets_repaired() {
        // p = 0 guarantees no random edges; repair must connect everything.
        let t = Topology::random_gnp(10, 0.0, 3);
        assert!(t.is_connected());
        assert_eq!(t.edge_count(), 9); // exactly a chain over components
    }

    #[test]
    fn geometric_is_connected() {
        let t = Topology::random_geometric(25, 0.05, 11);
        assert!(t.is_connected());
    }

    #[test]
    fn geometric_bucketing_matches_the_all_pairs_scan() {
        // The spatial hash must reproduce the edge set of the original
        // O(n²) scan exactly: same point stream, same distance test.
        for (n, radius, seed) in [(40usize, 0.2, 3u64), (300, 0.08, 9), (120, 1.5, 4)] {
            let mut r = rng::stream(seed, "topology-geo", 0);
            let pts: Vec<(f64, f64)> = (0..n).map(|_| (r.gen::<f64>(), r.gen::<f64>())).collect();
            let mut brute = BTreeSet::new();
            for i in 0..n {
                for j in i + 1..n {
                    let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
                    if (dx * dx + dy * dy).sqrt() <= radius {
                        brute.insert(EdgeKey::new(NodeId::from(i), NodeId::from(j)));
                    }
                }
            }
            // Undo connectivity repair: only compare against the raw
            // geometric edges, which are a subset of the final topology.
            let t = Topology::random_geometric(n, radius, seed);
            let built: BTreeSet<EdgeKey> = t.edges().iter().copied().collect();
            assert!(
                built.is_superset(&brute),
                "n={n} r={radius}: bucketed scan missed edges"
            );
            let extras: Vec<_> = built.difference(&brute).collect();
            // Any extras must come from the connectivity repair (a chain
            // over components), bounded by the component count.
            assert!(
                extras.len() < n,
                "n={n} r={radius}: unexpected extra edges {extras:?}"
            );
            if brute.len() == built.len() {
                assert_eq!(brute, built);
            }
        }
    }

    #[test]
    fn spanning_tree_spans() {
        let t = Topology::grid(4, 3);
        let tree = t.spanning_tree();
        assert_eq!(tree.len(), t.node_count() - 1);
        let sub = Topology::from_edges("tree", t.node_count(), tree);
        assert!(sub.is_connected());
    }

    #[test]
    fn from_edges_dedups_and_sorts() {
        let e = EdgeKey::new(NodeId(0), NodeId(1));
        let t = Topology::from_edges("t", 2, vec![e, e]);
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn from_edges_validates_nodes() {
        let _ = Topology::from_edges("t", 2, vec![EdgeKey::new(NodeId(0), NodeId(5))]);
    }

    #[test]
    fn small_world_is_connected_and_deterministic() {
        let a = Topology::small_world(20, 4, 0.2, 3);
        let b = Topology::small_world(20, 4, 0.2, 3);
        assert_eq!(a, b);
        assert!(a.is_connected());
        // beta = 0 is the pure ring lattice: exactly n*k/2 edges.
        let lattice = Topology::small_world(12, 4, 0.0, 0);
        assert_eq!(lattice.edge_count(), 12 * 2);
        assert_eq!(lattice.hop_diameter(), Some(3));
    }

    #[test]
    fn scale_free_is_connected_with_hubs() {
        let t = Topology::scale_free(40, 2, 7);
        assert!(t.is_connected());
        // Preferential attachment produces a hub noticeably above the
        // minimum degree.
        let max_deg = (0..40).map(|i| t.adjacency()[i].len()).max().unwrap();
        assert!(max_deg >= 6, "expected a hub, max degree {max_deg}");
        // Every arriving node brought m = 2 edges.
        assert!(t.edge_count() >= 2 * (40 - 3));
    }

    #[test]
    fn induced_connected_checks_subsets() {
        let t = Topology::line(6);
        let left: Vec<NodeId> = (0..3u32).map(NodeId).collect();
        assert!(t.induced_connected(&left));
        // {0, 2} without 1 is disconnected inside a line.
        assert!(!t.induced_connected(&[NodeId(0), NodeId(2)]));
        assert!(t.induced_connected(&[NodeId(4)]));
        assert!(t.induced_connected(&[]));
    }

    #[test]
    fn dot_output_lists_nodes_and_edges() {
        let dot = Topology::line(3).to_dot();
        assert!(dot.starts_with("graph \"line(3)\""));
        assert!(dot.contains("v0 -- v1;"));
        assert!(dot.contains("v1 -- v2;"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches("--").count(), 2);
    }

    #[test]
    fn hop_distances_from_corner() {
        let t = Topology::grid(3, 3);
        let d = t.hop_distances(NodeId(0));
        assert_eq!(d[8], 4); // opposite corner
        assert_eq!(d[0], 0);
    }
}
