//! Property-based tests of the dynamic-network substrate.

use proptest::prelude::*;

use gcs_net::mobility::RandomWaypoint;
use gcs_net::{ChurnOptions, EdgeEventKind, EdgeKey, NetworkSchedule, NodeId, Topology};
use gcs_sim::SimTime;

/// Replays a schedule against a state table and checks consistency: Down
/// only on up edges, Up only on down edges, paired directions within the
/// declared skew.
fn replay_and_check(schedule: &NetworkSchedule, skew_max: f64) -> Result<(), TestCaseError> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut up: BTreeSet<(NodeId, NodeId)> = schedule.initial_directed().iter().copied().collect();
    // Pending transitions awaiting their mirrored direction.
    let mut pending: BTreeMap<(NodeId, NodeId, bool), SimTime> = BTreeMap::new();
    for ev in schedule.events() {
        let key = (ev.from, ev.to);
        match ev.kind {
            EdgeEventKind::Up => {
                prop_assert!(!up.contains(&key), "Up for already-up {key:?}");
                up.insert(key);
            }
            EdgeEventKind::Down => {
                prop_assert!(up.remove(&key), "Down for already-down {key:?}");
            }
        }
        // Direction pairing: the mirrored event must occur within skew_max.
        let mirror = (ev.to, ev.from, ev.kind == EdgeEventKind::Up);
        if let Some(t0) = pending.remove(&mirror) {
            prop_assert!(
                (ev.time.as_secs() - t0.as_secs()).abs() <= skew_max + 1e-9,
                "direction skew too large on {key:?}"
            );
        } else {
            pending.insert((ev.from, ev.to, ev.kind == EdgeEventKind::Up), ev.time);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn churn_schedules_replay_consistently(
        seed in any::<u64>(),
        mean_up in 1.0f64..10.0,
        mean_down in 1.0f64..10.0,
        p_up in 0.0f64..=1.0,
    ) {
        let topo = Topology::complete(6);
        let opts = ChurnOptions {
            horizon: 60.0,
            mean_up,
            mean_down,
            direction_skew_max: 0.003,
            start_up_probability: p_up,
        };
        let s = NetworkSchedule::churn(&topo, opts, seed);
        replay_and_check(&s, 0.003)?;
        // The backbone tree keeps the initial graph connected.
        let tree_edges = topo.spanning_tree();
        for e in tree_edges {
            prop_assert!(s.initial_directed().contains(&(e.lo(), e.hi())));
        }
    }

    #[test]
    fn mobility_schedules_replay_consistently(
        seed in any::<u64>(),
        n in 4usize..10,
        radius in 0.2f64..0.7,
    ) {
        let m = RandomWaypoint {
            n,
            radius,
            hysteresis: 1.2,
            speed: (0.02, 0.06),
            horizon: 40.0,
            sample_period: 0.5,
            direction_skew_max: 0.002,
        };
        let s = m.generate(seed);
        replay_and_check(&s, 0.002)?;
    }

    #[test]
    fn partition_schedules_replay_consistently(
        seed in any::<u64>(),
        cut_at in 1u32..6,
    ) {
        let topo = Topology::ring(8);
        let left: Vec<NodeId> = (0..=cut_at).map(NodeId).collect();
        let s = NetworkSchedule::partition_and_merge(
            &topo,
            &left,
            SimTime::from_secs(5.0),
            SimTime::from_secs(10.0),
            0.001,
        );
        let _ = seed;
        replay_and_check(&s, 0.001)?;
    }

    #[test]
    fn generators_cover_edge_universe(
        seed in any::<u64>(),
        n in 5usize..12,
    ) {
        // Every event's edge must be in the universe, and the universe must
        // contain the initial edges.
        let topo = Topology::random_gnp(n, 0.4, seed);
        let s = NetworkSchedule::churn(&topo, ChurnOptions::default(), seed);
        let universe: std::collections::BTreeSet<EdgeKey> =
            s.edge_universe().into_iter().collect();
        for &(u, v) in s.initial_directed() {
            prop_assert!(universe.contains(&EdgeKey::new(u, v)));
        }
        for ev in s.events() {
            prop_assert!(universe.contains(&EdgeKey::new(ev.from, ev.to)));
        }
    }
}
