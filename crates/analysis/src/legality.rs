//! Legality checking (Definition 5.13) and closed-form gradient bounds.
//!
//! Theorem 5.22 shows that once the system has stabilized, it is legal with
//! respect to the gradient sequence `C_s = 2Ĝ/σ^{max(s−2, 0)}`: for every
//! level `s`, `Ψ^s_u < C_s/2` at every node. Lemma 5.14 then turns legality
//! into the pairwise bound
//! `|L_u − L_v| ≤ (s + ½)·κ_p + C_s/2`, which for the level choice
//! `s(p) = max{2 + ⌈log_σ(4Ĝ/κ_p)⌉, 1}` collapses to the familiar
//! `(s(p) + 1)·κ_p ∈ O(κ_p · log_σ(Ĝ/κ_p))` of Corollary 7.10.

use gcs_core::{Params, Simulation};
use gcs_net::NodeId;

use crate::paths::level_graph;
use crate::potentials::potentials_from;

/// The stabilized gradient sequence value `C_s = 2·Ĝ/σ^{max(s−2, 0)}`
/// (Theorem 5.22 / Definition 5.19 with the level-by-level insertion
/// completed).
#[must_use]
pub fn gradient_sequence(g_hat: f64, sigma: f64, s: u32) -> f64 {
    let exp = s.saturating_sub(2);
    2.0 * g_hat / sigma.powi(exp as i32)
}

/// The level the pairwise bound is evaluated at:
/// `s(p) = max{2 + ⌈log_σ(4Ĝ/κ_p)⌉, 1}` (Corollary 7.10).
#[must_use]
pub fn bound_level(g_hat: f64, sigma: f64, kappa_p: f64) -> u32 {
    assert!(kappa_p > 0.0, "path weight must be positive");
    let raw = 2.0 + (4.0 * g_hat / kappa_p).log(sigma).ceil();
    if raw < 1.0 {
        1
    } else {
        raw as u32
    }
}

/// The closed-form stable gradient skew bound for a path of weight
/// `κ_p` in a network whose global skew is bounded by `Ĝ`:
/// `(s(p) + 1)·κ_p` — the `O(κ_p · log_σ(Ĝ/κ_p))` of Theorem 5.22.
#[must_use]
pub fn gradient_bound(params: &Params, g_hat: f64, kappa_p: f64) -> f64 {
    let s = bound_level(g_hat, params.sigma(), kappa_p);
    f64::from(s + 1) * kappa_p
}

/// Outcome of checking one level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelReport {
    /// The level `s`.
    pub level: u32,
    /// Measured `Ψ^s = max_u Ψ^s_u`.
    pub psi_max: f64,
    /// The permitted `C_s/2`.
    pub allowed: f64,
}

impl LevelReport {
    /// Whether the level satisfies Definition 5.13 (with slack for the
    /// discretized trigger evaluation).
    #[must_use]
    pub fn is_legal(&self, slack: f64) -> bool {
        self.psi_max < self.allowed + slack
    }
}

/// Outcome of a full legality check at one instant.
#[derive(Debug, Clone)]
pub struct LegalityReport {
    /// The `Ĝ` the gradient sequence was anchored at.
    pub g_hat: f64,
    /// Additional slack allowed (discretization of triggers).
    pub slack: f64,
    /// Per-level results, `s = 1` first.
    pub levels: Vec<LevelReport>,
    /// Worst pairwise ratio `|L_u − L_v| / gradient_bound(κ_p)` over all
    /// connected pairs in the fully-inserted graph.
    pub worst_pair_ratio: f64,
}

impl LegalityReport {
    /// Whether every level is legal.
    #[must_use]
    pub fn is_legal(&self) -> bool {
        self.levels.iter().all(|l| l.is_legal(self.slack))
    }

    /// The levels that violate the bound.
    #[must_use]
    pub fn violations(&self) -> Vec<&LevelReport> {
        self.levels
            .iter()
            .filter(|l| !l.is_legal(self.slack))
            .collect()
    }

    /// Renders the per-level results as a printable [`Table`].
    ///
    /// [`Table`]: crate::Table
    #[must_use]
    pub fn to_table(&self) -> crate::Table {
        let mut t = crate::Table::new(
            format!("legality vs gradient sequence (G^ = {:.4})", self.g_hat),
            &[
                "level s",
                "Psi^s (measured)",
                "C_s/2 (allowed)",
                "usage",
                "legal",
            ],
        );
        for l in &self.levels {
            t.row([
                l.level.to_string(),
                crate::report::fmt_val(l.psi_max),
                crate::report::fmt_val(l.allowed),
                format!("{:.1}%", 100.0 * l.psi_max.max(0.0) / l.allowed),
                l.is_legal(self.slack).to_string(),
            ]);
        }
        t
    }
}

/// Checks legality of a running simulation against the stabilized gradient
/// sequences.
#[derive(Debug, Clone)]
pub struct GradientChecker {
    g_hat: f64,
    max_level: u32,
    slack: f64,
}

impl GradientChecker {
    /// Creates a checker anchored at the global-skew bound `Ĝ`.
    ///
    /// The level scan stops once `C_s` drops below the smallest edge weight
    /// (deeper levels are vacuous), capped at `max_level`.
    ///
    /// # Panics
    ///
    /// Panics if `g_hat` is not positive.
    #[must_use]
    pub fn new(g_hat: f64, max_level: u32, slack: f64) -> Self {
        assert!(g_hat > 0.0, "g_hat must be positive");
        GradientChecker {
            g_hat,
            max_level,
            slack,
        }
    }

    /// Runs the check at the simulation's current instant.
    #[must_use]
    pub fn check(&self, sim: &Simulation) -> LegalityReport {
        let params = sim.params();
        let sigma = params.sigma();
        let logical: Vec<f64> = (0..sim.node_count())
            .map(|u| sim.node(NodeId::from(u)).logical())
            .collect();

        let mut kappa_min = f64::INFINITY;
        for e in sim.level_edges(1) {
            if let Some(info) = sim.edge_info(e) {
                kappa_min = kappa_min.min(info.kappa);
            }
        }

        let mut levels = Vec::new();
        for s in 1..=self.max_level {
            let allowed = gradient_sequence(self.g_hat, sigma, s) / 2.0;
            if allowed < kappa_min / 2.0 && s > 2 {
                break; // Deeper levels demand sub-edge-weight precision.
            }
            let dist = level_graph(sim, s).all_pairs();
            let pot = potentials_from(&logical, &dist, s);
            levels.push(LevelReport {
                level: s,
                psi_max: pot.psi_max(),
                allowed,
            });
        }

        // Pairwise check on the fully-inserted graph.
        let mut worst = 0.0f64;
        for (kappa_p, skew) in crate::skew::weighted_skew_profile(sim) {
            let bound = gradient_bound(params, self.g_hat, kappa_p) + self.slack;
            worst = worst.max(skew / bound);
        }

        LegalityReport {
            g_hat: self.g_hat,
            slack: self.slack,
            levels,
            worst_pair_ratio: worst,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::SimBuilder;
    use gcs_net::Topology;
    use gcs_sim::DriftModel;

    #[test]
    fn gradient_sequence_decays_geometrically() {
        let c1 = gradient_sequence(1.0, 4.0, 1);
        let c2 = gradient_sequence(1.0, 4.0, 2);
        let c3 = gradient_sequence(1.0, 4.0, 3);
        let c4 = gradient_sequence(1.0, 4.0, 4);
        assert_eq!(c1, 2.0);
        assert_eq!(c2, 2.0); // max(s-2, 0) keeps the first two levels equal
        assert_eq!(c3, 0.5);
        assert_eq!(c4, 0.125);
    }

    #[test]
    fn bound_level_grows_logarithmically() {
        let sigma = 4.0;
        let s_long = bound_level(1.0, sigma, 1.0); // long path
        let s_short = bound_level(1.0, sigma, 0.001); // short path
        assert!(s_short > s_long);
        // Quadrupling the path weight reduces the level by exactly one.
        let a = bound_level(1.0, sigma, 0.01);
        let b = bound_level(1.0, sigma, 0.04);
        assert_eq!(a, b + 1);
    }

    #[test]
    fn gradient_bound_shape_is_d_log_d() {
        let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
        // Longer paths get a weaker bound, but the bound grows sublinearly
        // in 1/kappa for short paths (log factor).
        let b_short = gradient_bound(&params, 1.0, 0.01);
        let b_long = gradient_bound(&params, 1.0, 1.0);
        assert!(b_long > b_short);
        // At kappa_p = 4 G the log term vanishes: s(p) = 2, bound = 3 kappa.
        let b_max = gradient_bound(&params, 1.0, 4.0);
        assert!((b_max - 12.0).abs() < 1e-12);
        // Far beyond the global skew the level bottoms out at s = 1.
        let sigma = params.sigma();
        let b_floor = gradient_bound(&params, 1.0, 4.0 * sigma * sigma);
        assert!((b_floor - 2.0 * 4.0 * sigma * sigma).abs() < 1e-9);
    }

    #[test]
    fn checker_passes_on_stabilized_line() {
        let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
        let mut sim = SimBuilder::new(params)
            .topology(Topology::line(6))
            .drift(DriftModel::TwoBlock)
            .seed(1)
            .build()
            .unwrap();
        sim.run_until_secs(30.0);
        let g_hat = sim.params().g_tilde().unwrap();
        let slack = sim.params().discretization_slack(sim.tick_interval());
        let report = GradientChecker::new(g_hat, 16, slack).check(&sim);
        assert!(report.is_legal(), "violations: {:?}", report.violations());
        assert!(report.worst_pair_ratio <= 1.0);
        assert!(!report.levels.is_empty());
    }

    #[test]
    fn checker_flags_corrupted_clocks() {
        let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
        let mut sim = SimBuilder::new(params)
            .topology(Topology::line(6))
            .drift(DriftModel::None)
            .seed(1)
            .build()
            .unwrap();
        sim.run_until_secs(5.0);
        let g_hat = sim.params().g_tilde().unwrap();
        // Tear one node's clock far ahead: legality must fail at deep levels.
        sim.inject_clock_offset(NodeId(3), g_hat);
        let report = GradientChecker::new(g_hat, 16, 0.0).check(&sim);
        assert!(!report.is_legal());
        assert!(report.worst_pair_ratio > 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn checker_rejects_bad_g_hat() {
        let _ = GradientChecker::new(0.0, 4, 0.0);
    }

    #[test]
    fn report_renders_as_table() {
        let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
        let mut sim = SimBuilder::new(params)
            .topology(Topology::line(5))
            .drift(DriftModel::TwoBlock)
            .seed(2)
            .build()
            .unwrap();
        sim.run_until_secs(10.0);
        let g_hat = sim.params().g_tilde().unwrap();
        let report = GradientChecker::new(g_hat, 8, 0.0).check(&sim);
        let table = report.to_table();
        assert!(table.row_count() >= 2);
        let text = table.to_string();
        assert!(text.contains("legality"));
        assert!(text.contains("true"));
    }
}
