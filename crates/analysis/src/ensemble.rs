//! Monte-Carlo ensembles: run the same scenario across many seeds and
//! aggregate a scalar metric. Single-seed tables are perfectly
//! reproducible, but shape claims are stronger when the spread across
//! seeds is known; this module provides the machinery (used by tests,
//! the experiment harness, and the scenario campaign runner).
//!
//! `gcs-bench` re-exports this module as `gcs_bench::ensemble`.

use crate::parallel::parallel_map;
use crate::stats;

/// Aggregated statistics of one metric across seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleStats {
    /// Number of runs.
    pub runs: usize,
    /// Mean of the metric.
    pub mean: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
    /// Median.
    pub median: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// 10th percentile (linear interpolation).
    pub p10: f64,
    /// 90th percentile (linear interpolation).
    pub p90: f64,
}

impl EnsembleStats {
    /// Aggregates raw per-run values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "an ensemble needs at least one value");
        assert!(values.iter().all(|v| !v.is_nan()), "NaN in ensemble values");
        EnsembleStats {
            runs: values.len(),
            mean: stats::mean(values),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: stats::max(values),
            median: stats::quantile(values, 0.5),
            stddev: stats::stddev(values),
            p10: stats::quantile(values, 0.1),
            p90: stats::quantile(values, 0.9),
        }
    }

    /// Relative spread `(max − min) / mean` (0 for degenerate data).
    #[must_use]
    pub fn relative_spread(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.mean
        }
    }
}

/// Runs `metric` for every seed in `seeds` (in parallel) and aggregates.
///
/// # Panics
///
/// Panics if `seeds` is empty or a run returns NaN.
pub fn run<F>(seeds: &[u64], metric: F) -> EnsembleStats
where
    F: Fn(u64) -> f64 + Sync,
{
    assert!(!seeds.is_empty(), "an ensemble needs at least one seed");
    let values = parallel_map(seeds.to_vec(), |s| {
        let v = metric(s);
        assert!(!v.is_nan(), "metric returned NaN for seed {s}");
        v
    });
    EnsembleStats::from_values(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_simple_metrics() {
        let s = run(&[1, 2, 3, 4], |seed| seed as f64);
        assert_eq!(s.runs, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert!((s.relative_spread() - 1.2).abs() < 1e-12);
        // Population stddev of {1,2,3,4} is sqrt(1.25).
        assert!((s.stddev - 1.25f64.sqrt()).abs() < 1e-12);
        assert!((s.p10 - 1.3).abs() < 1e-12);
        assert!((s.p90 - 3.7).abs() < 1e-12);
    }

    #[test]
    fn single_value_is_degenerate() {
        let s = EnsembleStats::from_values(&[2.0]);
        assert_eq!(s.runs, 1);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.p10, 2.0);
        assert_eq!(s.p90, 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_ensemble_rejected() {
        let _ = run(&[], |_| 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_values_rejected() {
        let _ = EnsembleStats::from_values(&[1.0, f64::NAN]);
    }
}
