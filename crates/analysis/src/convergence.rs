//! Convergence analysis of skew time series: settle times, decay rates,
//! and overshoot — the quantities Theorem 5.6 (II) and §5.2 make claims
//! about.

/// Fits the *linear decay rate* of a decreasing series: the least-squares
/// slope of `value` against time over the samples where the series is
/// above `floor`, negated so a decaying series yields a positive rate.
///
/// Returns 0 if fewer than two samples qualify.
#[must_use]
pub fn linear_decay_rate(series: &[(f64, f64)], floor: f64) -> f64 {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .copied()
        .take_while(|&(_, v)| v > floor)
        .collect();
    -crate::stats::slope(&pts)
}

/// The first time the series reaches `target` and never exceeds it again;
/// `None` if it never settles.
#[must_use]
pub fn settle_time(series: &[(f64, f64)], target: f64) -> Option<f64> {
    let mut settle = None;
    for &(t, v) in series {
        if v <= target {
            settle.get_or_insert(t);
        } else {
            settle = None;
        }
    }
    settle
}

/// The maximum value after the first sample (the "overshoot" if the series
/// was expected to decay monotonically from its start).
#[must_use]
pub fn peak_after_start(series: &[(f64, f64)]) -> f64 {
    series.iter().skip(1).map(|&(_, v)| v).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decaying(rate: f64, start: f64, n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|k| {
                let t = k as f64 * 0.5;
                (t, (start - rate * t).max(0.01))
            })
            .collect()
    }

    #[test]
    fn recovers_linear_rate() {
        let s = decaying(0.08, 1.0, 20);
        let r = linear_decay_rate(&s, 0.05);
        assert!((r - 0.08).abs() < 1e-9, "rate {r}");
    }

    #[test]
    fn rate_ignores_the_settled_tail() {
        // After hitting the floor the series is flat; including it would
        // bias the slope towards zero.
        let mut s = decaying(0.1, 1.0, 40);
        s.extend((40..80).map(|k| (k as f64 * 0.5, 0.01)));
        let r = linear_decay_rate(&s, 0.05);
        assert!((r - 0.1).abs() < 1e-6, "rate {r}");
    }

    #[test]
    fn settle_requires_staying_below() {
        let s = vec![(0.0, 1.0), (1.0, 0.2), (2.0, 0.6), (3.0, 0.2), (4.0, 0.1)];
        assert_eq!(settle_time(&s, 0.3), Some(3.0));
        assert_eq!(settle_time(&s, 0.05), None);
        assert_eq!(settle_time(&[], 1.0), None);
    }

    #[test]
    fn peak_skips_first_sample() {
        let s = vec![(0.0, 5.0), (1.0, 0.5), (2.0, 0.8)];
        assert!((peak_after_start(&s) - 0.8).abs() < 1e-15);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(linear_decay_rate(&[], 0.0), 0.0);
        assert_eq!(linear_decay_rate(&[(0.0, 1.0)], 0.0), 0.0);
        assert_eq!(peak_after_start(&[]), 0.0);
    }
}
