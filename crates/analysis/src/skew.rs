//! Skew measurements over a running simulation.

use gcs_core::Simulation;
use gcs_net::{EdgeKey, NodeId};

use crate::paths::level_graph;

/// The *local skew*: the largest `|L_u − L_v|` over the undirected edges
/// currently inserted at level ≥ 1. Returns 0 for edge-less graphs.
#[must_use]
pub fn local_skew(sim: &Simulation) -> f64 {
    let mut edges = Vec::new();
    local_skew_with(sim, &mut edges)
}

/// Buffer-reusing variant of [`local_skew`] for per-sample observation
/// loops: `edges` is cleared and refilled (via
/// [`Simulation::level_edges_into`]) instead of allocating a fresh edge
/// vector at every sample.
#[must_use]
pub fn local_skew_with(sim: &Simulation, edges: &mut Vec<EdgeKey>) -> f64 {
    sim.level_edges_into(1, edges);
    edges
        .iter()
        .map(|e| (sim.node(e.lo()).logical() - sim.node(e.hi()).logical()).abs())
        .fold(0.0, f64::max)
}

/// The largest `|L_u − L_v|` over fully inserted edges only (the graph
/// `G_∞(t)` of Corollary 5.26).
#[must_use]
pub fn stable_local_skew(sim: &Simulation) -> f64 {
    sim.level_edges(u32::MAX)
        .into_iter()
        .map(|e| (sim.node(e.lo()).logical() - sim.node(e.hi()).logical()).abs())
        .fold(0.0, f64::max)
}

/// Both gradient profiles of the current fully-inserted graph, computed in
/// one sweep (see [`skew_profiles`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SkewProfiles {
    /// Skew vs hop distance: entry `d − 1` holds the maximum `|L_u − L_v|`
    /// over pairs at hop distance `d`. Pairs in different components are
    /// skipped.
    pub per_hop: Vec<f64>,
    /// Skew vs κ-weighted distance: `(κ_p, |L_u − L_v|)` for every
    /// connected pair `u < v`, where `κ_p` is the minimum path weight —
    /// the raw material for checking the `(log_σ(Ĝ/κ_p) + O(1))·κ_p`
    /// bound of Theorem 5.22.
    pub weighted: Vec<(f64, f64)>,
}

/// Computes [`SkewProfiles`] with a single graph build and one sweep over
/// sources — per source, one κ-weighted Dijkstra plus one (much cheaper)
/// hop BFS over the same adjacency, instead of the two independent
/// all-pairs passes the separate profile functions used to pay per
/// observation sample. All scratch is reused across sources.
#[must_use]
pub fn skew_profiles(sim: &Simulation) -> SkewProfiles {
    let g = crate::paths::full_level_graph(sim);
    let n = sim.node_count();
    let mut out = SkewProfiles::default();
    let mut kdist: Vec<f64> = Vec::new();
    let mut hops: Vec<f64> = Vec::new();
    let mut queue: Vec<u32> = Vec::new();
    for u in 0..n {
        let lu = sim.node(NodeId::from(u)).logical();
        g.distances_into(NodeId::from(u), &mut kdist);
        g.hop_distances_into(NodeId::from(u), &mut hops, &mut queue);
        for (v, &h) in hops.iter().enumerate().skip(u + 1) {
            if !h.is_finite() {
                continue;
            }
            let d = h.round() as usize;
            if d == 0 {
                continue;
            }
            let skew = (lu - sim.node(NodeId::from(v)).logical()).abs();
            if out.per_hop.len() < d {
                out.per_hop.resize(d, 0.0);
            }
            out.per_hop[d - 1] = out.per_hop[d - 1].max(skew);
            let kd = kdist[v];
            if kd.is_finite() && kd != 0.0 {
                out.weighted.push((kd, skew));
            }
        }
    }
    out
}

/// Skew vs hop distance: entry `d − 1` holds the maximum `|L_u − L_v|` over
/// pairs at hop distance `d` in the current fully-inserted graph. Pairs in
/// different components are skipped.
///
/// Callers that also need [`weighted_skew_profile`] at the same instant
/// should use [`skew_profiles`], which shares one sweep between the two.
#[must_use]
pub fn skew_profile(sim: &Simulation) -> Vec<f64> {
    let g = crate::paths::full_level_graph(sim);
    let n = sim.node_count();
    let mut profile: Vec<f64> = Vec::new();
    let mut hops: Vec<f64> = Vec::new();
    let mut queue: Vec<u32> = Vec::new();
    for u in 0..n {
        let lu = sim.node(NodeId::from(u)).logical();
        g.hop_distances_into(NodeId::from(u), &mut hops, &mut queue);
        for (v, &h) in hops.iter().enumerate().skip(u + 1) {
            if !h.is_finite() {
                continue;
            }
            let d = h.round() as usize;
            if d == 0 {
                continue;
            }
            if profile.len() < d {
                profile.resize(d, 0.0);
            }
            let skew = (lu - sim.node(NodeId::from(v)).logical()).abs();
            profile[d - 1] = profile[d - 1].max(skew);
        }
    }
    profile
}

/// Skew vs κ-weighted distance: `(κ_p, |L_u − L_v|)` for every connected
/// pair `u < v`, where `κ_p` is the minimum path weight in the current
/// fully-inserted graph.
///
/// Callers that also need [`skew_profile`] at the same instant should use
/// [`skew_profiles`], which shares one sweep between the two.
#[must_use]
pub fn weighted_skew_profile(sim: &Simulation) -> Vec<(f64, f64)> {
    skew_profiles(sim).weighted
}

/// The κ-weighted diameter of the current level-`s` graph (`None` if
/// disconnected). With `s = 1` this is the denominator for global-skew
/// comparisons.
#[must_use]
pub fn kappa_diameter(sim: &Simulation, s: u32) -> Option<f64> {
    level_graph(sim, s).all_pairs().diameter()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::{Params, SimBuilder};
    use gcs_net::Topology;
    use gcs_sim::DriftModel;

    fn sim(n: usize) -> Simulation {
        let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
        let mut s = SimBuilder::new(params)
            .topology(Topology::line(n))
            .drift(DriftModel::TwoBlock)
            .seed(3)
            .build()
            .unwrap();
        s.run_until_secs(10.0);
        s
    }

    #[test]
    fn local_skew_is_bounded_by_global() {
        let s = sim(6);
        let local = local_skew(&s);
        let global = s.snapshot().global_skew();
        assert!(local <= global + 1e-12);
        assert!(local > 0.0);
        assert!(stable_local_skew(&s) <= local + 1e-12);
    }

    #[test]
    fn profile_has_diameter_entries_and_is_monotonic_enough() {
        let s = sim(6);
        let p = skew_profile(&s);
        assert_eq!(p.len(), 5); // line(6): max hop distance 5
                                // The max skew at the diameter dominates the single-edge skew.
        assert!(p[4] >= p[0] - 1e-12);
    }

    #[test]
    fn weighted_profile_covers_all_pairs() {
        let s = sim(5);
        let p = weighted_skew_profile(&s);
        assert_eq!(p.len(), 5 * 4 / 2);
        for (d, skew) in p {
            assert!(d > 0.0);
            assert!(skew >= 0.0);
        }
    }

    #[test]
    fn combined_sweep_matches_the_individual_profiles() {
        let s = sim(7);
        let both = skew_profiles(&s);
        assert_eq!(both.per_hop, skew_profile(&s), "per-hop profile diverged");
        // weighted_skew_profile is the combined sweep's weighted half by
        // construction; check it against first principles instead: every
        // connected pair, positive distances, symmetric-free (u < v).
        assert_eq!(both.weighted.len(), 7 * 6 / 2);
        for &(d, skew) in &both.weighted {
            assert!(d > 0.0 && skew >= 0.0);
        }
    }

    #[test]
    fn local_skew_with_reuses_the_buffer() {
        let s = sim(5);
        let mut edges = Vec::new();
        let a = local_skew_with(&s, &mut edges);
        assert_eq!(edges.len(), 4); // line(5) edges
        let b = local_skew_with(&s, &mut edges);
        assert_eq!(a, b);
        assert_eq!(a, local_skew(&s));
    }

    #[test]
    fn kappa_diameter_scales_with_length() {
        let a = kappa_diameter(&sim(4), 1).unwrap();
        let b = kappa_diameter(&sim(8), 1).unwrap();
        assert!(
            (b / a - 7.0 / 3.0).abs() < 1e-9,
            "uniform weights scale by hops"
        );
    }
}
