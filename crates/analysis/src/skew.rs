//! Skew measurements over a running simulation.

use gcs_core::Simulation;
use gcs_net::NodeId;

use crate::paths::{full_level_graph, level_graph};

/// The *local skew*: the largest `|L_u − L_v|` over the undirected edges
/// currently inserted at level ≥ 1. Returns 0 for edge-less graphs.
#[must_use]
pub fn local_skew(sim: &Simulation) -> f64 {
    sim.level_edges(1)
        .into_iter()
        .map(|e| (sim.node(e.lo()).logical() - sim.node(e.hi()).logical()).abs())
        .fold(0.0, f64::max)
}

/// The largest `|L_u − L_v|` over fully inserted edges only (the graph
/// `G_∞(t)` of Corollary 5.26).
#[must_use]
pub fn stable_local_skew(sim: &Simulation) -> f64 {
    sim.level_edges(u32::MAX)
        .into_iter()
        .map(|e| (sim.node(e.lo()).logical() - sim.node(e.hi()).logical()).abs())
        .fold(0.0, f64::max)
}

/// Skew vs hop distance: entry `d − 1` holds the maximum `|L_u − L_v|` over
/// pairs at hop distance `d` in the current fully-inserted graph. Pairs in
/// different components are skipped.
#[must_use]
pub fn skew_profile(sim: &Simulation) -> Vec<f64> {
    let g = full_level_graph(sim);
    // Hop distances: reuse the weighted machinery with unit weights.
    let mut unit = crate::paths::WeightedGraph::new(sim.node_count());
    for e in sim.level_edges(u32::MAX) {
        unit.add_edge(e, 1.0);
    }
    let n = sim.node_count();
    let mut profile: Vec<f64> = Vec::new();
    for u in 0..n {
        let hops = unit.distances_from(NodeId::from(u));
        for (v, &h) in hops.iter().enumerate().skip(u + 1) {
            if !h.is_finite() {
                continue;
            }
            let d = h.round() as usize;
            if d == 0 {
                continue;
            }
            if profile.len() < d {
                profile.resize(d, 0.0);
            }
            let skew =
                (sim.node(NodeId::from(u)).logical() - sim.node(NodeId::from(v)).logical()).abs();
            profile[d - 1] = profile[d - 1].max(skew);
        }
    }
    drop(g);
    profile
}

/// Skew vs κ-weighted distance: `(κ_p, |L_u − L_v|)` for every connected
/// pair `u < v`, where `κ_p` is the minimum path weight in the current
/// fully-inserted graph. This is the raw material for checking the
/// `(log_σ(Ĝ/κ_p) + O(1))·κ_p` bound of Theorem 5.22.
#[must_use]
pub fn weighted_skew_profile(sim: &Simulation) -> Vec<(f64, f64)> {
    let g = full_level_graph(sim);
    let n = sim.node_count();
    let mut out = Vec::new();
    for u in 0..n {
        let dist = g.distances_from(NodeId::from(u));
        for (v, &d) in dist.iter().enumerate().skip(u + 1) {
            if !d.is_finite() || d == 0.0 {
                continue;
            }
            let skew =
                (sim.node(NodeId::from(u)).logical() - sim.node(NodeId::from(v)).logical()).abs();
            out.push((d, skew));
        }
    }
    out
}

/// The κ-weighted diameter of the current level-`s` graph (`None` if
/// disconnected). With `s = 1` this is the denominator for global-skew
/// comparisons.
#[must_use]
pub fn kappa_diameter(sim: &Simulation, s: u32) -> Option<f64> {
    level_graph(sim, s).all_pairs().diameter()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::{Params, SimBuilder};
    use gcs_net::Topology;
    use gcs_sim::DriftModel;

    fn sim(n: usize) -> Simulation {
        let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
        let mut s = SimBuilder::new(params)
            .topology(Topology::line(n))
            .drift(DriftModel::TwoBlock)
            .seed(3)
            .build()
            .unwrap();
        s.run_until_secs(10.0);
        s
    }

    #[test]
    fn local_skew_is_bounded_by_global() {
        let s = sim(6);
        let local = local_skew(&s);
        let global = s.snapshot().global_skew();
        assert!(local <= global + 1e-12);
        assert!(local > 0.0);
        assert!(stable_local_skew(&s) <= local + 1e-12);
    }

    #[test]
    fn profile_has_diameter_entries_and_is_monotonic_enough() {
        let s = sim(6);
        let p = skew_profile(&s);
        assert_eq!(p.len(), 5); // line(6): max hop distance 5
                                // The max skew at the diameter dominates the single-edge skew.
        assert!(p[4] >= p[0] - 1e-12);
    }

    #[test]
    fn weighted_profile_covers_all_pairs() {
        let s = sim(5);
        let p = weighted_skew_profile(&s);
        assert_eq!(p.len(), 5 * 4 / 2);
        for (d, skew) in p {
            assert!(d > 0.0);
            assert!(skew >= 0.0);
        }
    }

    #[test]
    fn kappa_diameter_scales_with_length() {
        let a = kappa_diameter(&sim(4), 1).unwrap();
        let b = kappa_diameter(&sim(8), 1).unwrap();
        assert!(
            (b / a - 7.0 / 3.0).abs() < 1e-9,
            "uniform weights scale by hops"
        );
    }
}
