//! Chunked work-stealing fan-out for independent simulation jobs.
//!
//! Lives in `gcs-analysis` so both the experiment harness (`gcs-bench`)
//! and the scenario campaign runner (`gcs-scenarios`) share one
//! implementation; `gcs-bench` re-exports it as `gcs_bench::parallel_map`.
//!
//! A fixed pool of workers (at most the machine's parallelism) pulls
//! chunks of job indexes from a shared atomic queue until it drains, so a
//! campaign with hundreds of scenario × seed jobs never spawns hundreds
//! of threads, and a straggler job cannot idle the rest of the pool:
//! whichever worker finishes its chunk first steals the next one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound on pool size; beyond this, more threads only add
/// scheduler pressure for the simulation-sized jobs this runs.
const MAX_WORKERS: usize = 64;

/// How many chunks each worker would get if jobs were split evenly.
/// Smaller chunks balance stragglers better; larger ones amortize the
/// queue traffic. 4 chunks per worker keeps the tail short while touching
/// the shared counter O(workers) times, not O(jobs).
const CHUNKS_PER_WORKER: usize = 4;

/// Runs independent jobs on a fixed worker pool and returns results in
/// input order (used to parallelize sweep rows and scenario × seed
/// campaigns; each item is typically a whole simulation).
///
/// Workers claim contiguous index chunks from a shared queue, so the
/// thread count is `min(parallelism, jobs)` regardless of how many jobs
/// are submitted, and results are bit-identical to the sequential
/// `items.into_iter().map(f)` — scheduling never changes *what* runs,
/// only *where*.
///
/// # Panics
///
/// Propagates the first panic of any job.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map_or(4, std::num::NonZeroUsize::get)
        .min(MAX_WORKERS)
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers * CHUNKS_PER_WORKER).max(1);

    // Jobs and result slots live behind per-index mutexes (the workspace
    // forbids unsafe code); each lock is taken exactly once per job, so
    // contention is nil next to simulation-sized work.
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for i in start..(start + chunk).min(n) {
                    let item = jobs[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job index claimed twice");
                    let r = f(item);
                    *results[i].lock().expect("result slot poisoned") = Some(r);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("parallel job dropped")
        })
        .collect()
}

/// [`parallel_map`] plus a completion callback invoked **in input order**:
/// `on_done(i, &result)` fires for job `i` only after jobs `0..i` have all
/// fired, as soon as the contiguous done-prefix reaches it. The pool still
/// completes jobs in whatever order the workers get to them — a reorder
/// buffer (the result slots themselves) canonicalizes the reporting, so
/// progress output (e.g. one CI log line per finished scenario × seed) is
/// deterministic even though scheduling is not.
///
/// # Panics
///
/// Propagates the first panic of any job or of the callback.
pub fn parallel_map_progress<T, R, F, P>(items: Vec<T>, f: F, on_done: P) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
    P: Fn(usize, &R) + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map_or(4, std::num::NonZeroUsize::get)
        .min(MAX_WORKERS)
        .min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let r = f(t);
                on_done(i, &r);
                r
            })
            .collect();
    }
    let chunk = n.div_ceil(workers * CHUNKS_PER_WORKER).max(1);

    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // Next index to report; the holder of this lock flushes the contiguous
    // prefix of finished results. Lock order is cursor → result slot, and
    // storing a result never holds another lock, so there is no cycle.
    let cursor = Mutex::new(0usize);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for i in start..(start + chunk).min(n) {
                    let item = jobs[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job index claimed twice");
                    let r = f(item);
                    *results[i].lock().expect("result slot poisoned") = Some(r);
                    let mut at = cursor.lock().expect("cursor poisoned");
                    while *at < n {
                        let slot = results[*at].lock().expect("result slot poisoned");
                        match slot.as_ref() {
                            Some(done) => {
                                on_done(*at, done);
                                *at += 1;
                            }
                            None => break,
                        }
                    }
                }
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("parallel job dropped")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_preserves_order() {
        let xs = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
        let ys = parallel_map(xs.clone(), |x| x * 2);
        assert_eq!(ys, xs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_input() {
        let ys: Vec<u64> = parallel_map(Vec::<u64>::new(), |x| x);
        assert!(ys.is_empty());
    }

    #[test]
    fn parallel_map_matches_sequential_for_large_inputs() {
        // Far more jobs than workers: every chunk boundary is exercised
        // and the output must still be the sequential map, in order.
        let xs: Vec<u64> = (0..1000).collect();
        let ys = parallel_map(xs.clone(), |x| x.wrapping_mul(2_654_435_761) ^ 0x9e37);
        let expected: Vec<u64> = xs
            .iter()
            .map(|x| x.wrapping_mul(2_654_435_761) ^ 0x9e37)
            .collect();
        assert_eq!(ys, expected);
    }

    #[test]
    fn parallel_map_runs_every_job_exactly_once() {
        let calls = AtomicUsize::new(0);
        let ys = parallel_map((0..257u64).collect(), |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(ys, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_single_item() {
        assert_eq!(parallel_map(vec![7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_map_progress_reports_in_input_order() {
        let seen = Mutex::new(Vec::new());
        let ys = parallel_map_progress(
            (0..257u64).collect(),
            |x| x * 3,
            |i, r| {
                seen.lock().unwrap().push((i, *r));
            },
        );
        assert_eq!(ys, (0..257).map(|x| x * 3).collect::<Vec<_>>());
        let seen = seen.into_inner().unwrap();
        // Every job reported exactly once, in canonical input order,
        // regardless of completion order.
        assert_eq!(
            seen,
            (0..257).map(|i| (i as usize, i * 3)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn parallel_map_progress_handles_empty_and_single() {
        let ys: Vec<u64> = parallel_map_progress(Vec::new(), |x| x, |_, _| {});
        assert!(ys.is_empty());
        let count = AtomicUsize::new(0);
        let ys = parallel_map_progress(
            vec![9u64],
            |x| x,
            |i, r| {
                assert_eq!((i, *r), (0, 9));
                count.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(ys, vec![9]);
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn parallel_map_propagates_job_panics() {
        let _ = parallel_map(vec![1u64, 2, 3], |x| {
            assert!(x != 2, "boom");
            x
        });
    }
}
