//! Scoped-thread fan-out for independent simulation jobs.
//!
//! Lives in `gcs-analysis` so both the experiment harness (`gcs-bench`)
//! and the scenario campaign runner (`gcs-scenarios`) share one
//! implementation; `gcs-bench` re-exports it as `gcs_bench::parallel_map`.

/// Runs independent jobs on scoped threads and returns results in input
/// order (used to parallelize sweep rows and scenario × seed campaigns;
/// each item is typically a whole simulation).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = items.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, item) in items.into_iter().enumerate() {
            let f = &f;
            handles.push((i, scope.spawn(move || f(item))));
        }
        for (i, h) in handles {
            out[i] = Some(h.join().expect("parallel job panicked"));
        }
    });
    out.into_iter().map(|r| r.expect("job filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let xs = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
        let ys = parallel_map(xs.clone(), |x| x * 2);
        assert_eq!(ys, xs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_input() {
        let ys: Vec<u64> = parallel_map(Vec::<u64>::new(), |x| x);
        assert!(ys.is_empty());
    }
}
