//! Plain-text tables and CSV output for the experiment harness.
//!
//! The benchmark targets print one [`Table`] per reproduced result; the
//! same data can be exported as CSV for external plotting.

use std::fmt;

/// A simple aligned-column table with a title and caption.
///
/// # Example
///
/// ```
/// use gcs_analysis::Table;
///
/// let mut t = Table::new("E0: demo", &["n", "skew"]);
/// t.row(["8", "0.012"]);
/// t.row(["16", "0.019"]);
/// let text = t.to_string();
/// assert!(text.contains("E0: demo"));
/// assert!(text.contains("0.019"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            caption: String::new(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Sets an explanatory caption printed under the title.
    pub fn caption(&mut self, text: impl Into<String>) -> &mut Self {
        self.caption = text.into();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders as CSV (headers first, RFC-4180-style quoting for cells
    /// containing commas or quotes).
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 3 * cols.saturating_sub(1);

        writeln!(f, "== {} ==", self.title)?;
        if !self.caption.is_empty() {
            writeln!(f, "{}", self.caption)?;
        }
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{h:>w$}", w = widths[i])?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:>w$}", w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Formats a float compactly for table cells (4 significant decimals,
/// scientific for very small magnitudes).
#[must_use]
pub fn fmt_val(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() < 1e-3 || x.abs() >= 1e6 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("title", &["a", "long-header"]);
        t.caption("cap");
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.to_string();
        assert!(s.contains("== title =="));
        assert!(s.contains("cap"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows align on the right.
        assert!(lines[2].ends_with("long-header"));
        assert!(lines.iter().any(|l| l.trim_start().starts_with("333")));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = Table::new("t", &["x", "y"]);
        t.row(["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "x,y\n\"a,b\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn row_arity_checked() {
        let mut t = Table::new("t", &["x", "y"]);
        t.row(["only-one"]);
    }

    #[test]
    fn fmt_val_ranges() {
        assert_eq!(fmt_val(0.0), "0");
        assert_eq!(fmt_val(1.23456), "1.2346");
        assert!(fmt_val(1.2e-5).contains('e'));
        assert!(fmt_val(3.2e7).contains('e'));
    }
}
