//! Paper-bound conformance oracles: the theorems of Kuhn–Lenzen–Locher–
//! Oshman checked as machine oracles over a running simulation.
//!
//! Given the validated [`Params`] and the *realized* dynamic graph (the
//! level sets, effective weights, and the fault/insertion
//! [`change_log`](Simulation::change_log) of a live [`Simulation`]), a
//! [`ConformanceChecker`] verifies every sampled snapshot against three
//! bound families:
//!
//! 1. **Global-skew envelope** (Theorem 5.6): `G(t) ≤ Ĝ`, widened by a
//!    *decaying* self-stabilization allowance after every injected clock
//!    corruption (§5.2: excess skew drains at rate at least
//!    `µ(1−ρ) − 2ρ` once the flood bounds have re-converged) and by a
//!    *growing* `β − α` allowance while the realized graph is
//!    disconnected (across an open cut the model bounds nothing: the
//!    components' logical clocks can spread at the full rate envelope).
//! 2. **Gradient (local-skew) bound** (Theorem 5.22 via Lemma 5.14 and
//!    Corollary 7.10): for every pair connected in the *fully inserted*
//!    graph `G_∞(t)`, `|L_u − L_v| ≤ (s(p) + 1)·κ_p` with
//!    `s(p) = max{2 + ⌈log_σ(4Ĝ/κ_p)⌉, 1}` — the `O(log n)` gradient.
//!    Checked pairwise and aggregated per hop-distance class.
//! 3. **Weak-edge bound**: an edge still climbing the staged-insertion
//!    levels (unlocked to some finite `s ≥ 1`, not yet fully inserted) is
//!    only promised the level-`s` legality bound
//!    `(s + ½)·κ_e + C_s/2` with `C_s = 2Ĝ/σ^{max(s−2,0)}`
//!    (Definition 5.13 / Lemma 5.14) — for `s ≤ 2` that is ≈ `Ĝ`, which
//!    is exactly why fresh edges must not be held to the strong gradient.
//!
//! The checker is deterministic and read-only: feeding it bit-identical
//! snapshots produces bit-identical [`ConformanceReport`]s (the engine
//! equivalence suite leans on this).

use gcs_core::{ChangeRecord, Params, Simulation};
use gcs_net::{EdgeKey, NodeId};

use crate::legality::{gradient_bound, gradient_sequence};
use crate::paths::WeightedGraph;

/// Tuning of the conformance envelope. Everything is derived from the
/// simulation's own parameters by [`OracleConfig::for_sim`]; the fields
/// are public so tests can sharpen or (deliberately) mis-specify them.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleConfig {
    /// The global-skew anchor `Ĝ` every bound is expressed against
    /// (normally the run's `G̃`, which Theorem 5.6 guarantees).
    pub g_hat: f64,
    /// Additive slack on every check: trigger discretization plus one
    /// sampling period of relative clock movement.
    pub slack: f64,
    /// Credited drain rate of the post-corruption allowance, seconds of
    /// skew per second. Half the guaranteed `µ(1−ρ) − 2ρ` by default —
    /// the guarantee holds once the flood bounds have re-converged, and
    /// halving it absorbs propagation hiccups.
    pub recovery_rate: f64,
    /// Seconds after a corruption before its allowance starts draining
    /// (the gossip rounds the §5.2 re-convergence needs).
    pub recovery_latency: f64,
    /// Whether injected clock faults earn a decaying allowance. Disabling
    /// this holds a corrupted run to the *undisturbed* envelope — the
    /// knob negative-path tests use to prove violations are caught.
    pub credit_faults: bool,
}

impl OracleConfig {
    /// Derives the envelope configuration from a built simulation: `Ĝ`
    /// from the run's `G̃`, slack from the trigger discretization plus
    /// `sample_period` of relative drift, recovery from the paper's rate.
    ///
    /// # Panics
    ///
    /// Panics if the simulation carries no `G̃` (the builder always
    /// derives one) or `sample_period` is negative.
    #[must_use]
    pub fn for_sim(sim: &Simulation, sample_period: f64) -> Self {
        assert!(sample_period >= 0.0, "sample period must be non-negative");
        let params = sim.params();
        let g_hat = params
            .g_tilde()
            .expect("simulation builder always derives a G~");
        let rate = params.mu() * (1.0 - params.rho()) - 2.0 * params.rho();
        let gossip_hop = sim.refresh_interval() / params.alpha() + sim.tick_interval();
        OracleConfig {
            g_hat,
            slack: params.discretization_slack(sim.tick_interval())
                + sample_period * (params.beta() - params.alpha()),
            recovery_rate: (0.5 * rate).max(0.0),
            recovery_latency: sim.node_count() as f64 * gossip_hop,
            credit_faults: true,
        }
    }
}

/// Aggregated outcome of one bound family across all observed samples.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundCheck {
    /// Individual `(observed, allowed)` comparisons made.
    pub checks: u64,
    /// Comparisons where the observed value exceeded the allowed bound.
    pub violations: u64,
    /// Sample time of the first violation, if any.
    pub first_violation: Option<f64>,
    /// The tightest margin seen: `min(allowed − observed)`. Negative iff
    /// a violation occurred; `INFINITY` if nothing was checked.
    pub min_margin: f64,
    /// The worst utilization seen: `max(observed / allowed)`.
    pub worst_utilization: f64,
}

impl BoundCheck {
    fn new() -> Self {
        BoundCheck {
            checks: 0,
            violations: 0,
            first_violation: None,
            min_margin: f64::INFINITY,
            worst_utilization: 0.0,
        }
    }

    fn record(&mut self, t: f64, observed: f64, allowed: f64) {
        self.checks += 1;
        let margin = allowed - observed;
        if margin < self.min_margin {
            self.min_margin = margin;
        }
        let util = observed / allowed;
        if util > self.worst_utilization {
            self.worst_utilization = util;
        }
        if margin < 0.0 {
            self.violations += 1;
            if self.first_violation.is_none() {
                self.first_violation = Some(t);
            }
        }
    }

    /// Whether every comparison stayed within its bound.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations == 0
    }
}

/// Worst case observed for one hop-distance class of the fully inserted
/// graph — how the measured gradient compares against the Theorem 5.22
/// bound at each distance.
#[derive(Debug, Clone, PartialEq)]
pub struct HopClass {
    /// Hop distance `d ≥ 1` in `G_∞(t)`.
    pub hops: u32,
    /// Pair samples observed at this distance (across all instants).
    pub pairs: u64,
    /// Largest `|L_u − L_v|` seen at this distance.
    pub worst_skew: f64,
    /// Tightest margin (`allowed − observed`) seen at this distance.
    pub min_margin: f64,
    /// Worst `observed / allowed` at this distance.
    pub worst_utilization: f64,
}

/// The per-run verdict of the conformance oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceReport {
    /// The anchor `Ĝ` the bounds were expressed against.
    pub g_hat: f64,
    /// Additive slack applied to every bound.
    pub slack: f64,
    /// Snapshots observed.
    pub samples: u64,
    /// Global-skew envelope results (Theorem 5.6 + §5.2 allowance).
    pub global: BoundCheck,
    /// Pairwise gradient results over `G_∞(t)` (Theorem 5.22).
    pub gradient: BoundCheck,
    /// Weak-edge results (level-`s` legality, Lemma 5.14).
    pub weak_edges: BoundCheck,
    /// Per-hop-distance worst cases of the gradient check, `d = 1` first.
    pub per_hop: Vec<HopClass>,
    /// Clock corruptions replayed from the realized change log.
    pub faults_seen: u64,
    /// Directed edge appearances replayed.
    pub insertions_seen: u64,
    /// Directed edge disappearances replayed.
    pub removals_seen: u64,
    /// Samples at which the realized graph was disconnected.
    pub disconnected_samples: u64,
}

impl ConformanceReport {
    /// Whether every check of every family passed.
    #[must_use]
    pub fn is_conformant(&self) -> bool {
        self.global.passed() && self.gradient.passed() && self.weak_edges.passed()
    }

    /// The earliest violation instant across all families, if any.
    #[must_use]
    pub fn first_violation(&self) -> Option<f64> {
        [&self.global, &self.gradient, &self.weak_edges]
            .into_iter()
            .filter_map(|c| c.first_violation)
            .min_by(f64::total_cmp)
    }

    /// One human-readable line per violated bound family.
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut push = |name: &str, c: &BoundCheck| {
            if !c.passed() {
                out.push(format!(
                    "{name}: {}/{} checks violated (first at t={:.3}s, worst margin {:.6})",
                    c.violations,
                    c.checks,
                    c.first_violation.unwrap_or(f64::NAN),
                    c.min_margin,
                ));
            }
        };
        push("global-skew envelope (Thm 5.6)", &self.global);
        push("gradient bound (Thm 5.22)", &self.gradient);
        push("weak-edge bound (Lemma 5.14)", &self.weak_edges);
        out
    }

    /// Renders the per-family and per-hop-class results as a printable
    /// [`Table`](crate::Table).
    #[must_use]
    pub fn to_table(&self) -> crate::Table {
        let mut t = crate::Table::new(
            format!(
                "conformance vs paper bounds (G^ = {:.4}, {} samples)",
                self.g_hat, self.samples
            ),
            &[
                "bound",
                "checks",
                "violations",
                "first viol.",
                "min margin",
                "worst use",
            ],
        );
        t.caption(
            "global = Theorem 5.6 envelope (with self-stabilization and partition \
             allowances); gradient = the Theorem 5.22 pairwise bound over the fully \
             inserted graph, also broken out per hop distance; weak d=... rows cover \
             edges still climbing the staged-insertion levels (Lemma 5.14).",
        );
        let fam = |t: &mut crate::Table, name: String, c: &BoundCheck| {
            t.row([
                name,
                c.checks.to_string(),
                c.violations.to_string(),
                c.first_violation
                    .map_or("-".to_string(), |v| format!("{v:.3}s")),
                if c.checks == 0 {
                    "-".to_string()
                } else {
                    crate::report::fmt_val(c.min_margin)
                },
                if c.checks == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}%", 100.0 * c.worst_utilization)
                },
            ]);
        };
        fam(&mut t, "global".to_string(), &self.global);
        fam(&mut t, "gradient".to_string(), &self.gradient);
        fam(&mut t, "weak edges".to_string(), &self.weak_edges);
        for h in &self.per_hop {
            t.row([
                format!("gradient d={}", h.hops),
                h.pairs.to_string(),
                "-".to_string(),
                "-".to_string(),
                crate::report::fmt_val(h.min_margin),
                format!("{:.1}%", 100.0 * h.worst_utilization),
            ]);
        }
        t
    }
}

/// One still-draining corruption allowance.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FaultAllowance {
    at: f64,
    magnitude: f64,
}

/// The incremental conformance oracle: feed it every sampled instant of a
/// run via [`observe`](ConformanceChecker::observe), then
/// [`finish`](ConformanceChecker::finish) it into a
/// [`ConformanceReport`].
#[derive(Debug, Clone)]
pub struct ConformanceChecker {
    cfg: OracleConfig,
    params: Params,
    last_t: Option<f64>,
    change_cursor: usize,
    faults: Vec<FaultAllowance>,
    partition_slack: f64,
    report: ConformanceReport,
    // Scratch reused across samples (the sweep is per-source Dijkstra+BFS).
    strong_edges: Vec<EdgeKey>,
    level1_edges: Vec<EdgeKey>,
    strong: WeightedGraph,
    kdist: Vec<f64>,
    hops: Vec<f64>,
    queue: Vec<u32>,
    logical: Vec<f64>,
}

impl ConformanceChecker {
    /// Creates a checker for the given simulation (reads `Params` and the
    /// derived envelope configuration; `sample_period` is the caller's
    /// observation grid, used only to size the discretization slack).
    #[must_use]
    pub fn new(sim: &Simulation, sample_period: f64) -> Self {
        Self::with_config(sim, OracleConfig::for_sim(sim, sample_period))
    }

    /// Creates a checker with an explicit configuration (tests use this to
    /// sharpen or deliberately mis-specify the envelope).
    ///
    /// # Panics
    ///
    /// Panics if `g_hat` is not positive and finite.
    #[must_use]
    pub fn with_config(sim: &Simulation, cfg: OracleConfig) -> Self {
        assert!(
            cfg.g_hat > 0.0 && cfg.g_hat.is_finite(),
            "g_hat must be positive and finite"
        );
        ConformanceChecker {
            params: sim.params().clone(),
            report: ConformanceReport {
                g_hat: cfg.g_hat,
                slack: cfg.slack,
                samples: 0,
                global: BoundCheck::new(),
                gradient: BoundCheck::new(),
                weak_edges: BoundCheck::new(),
                per_hop: Vec::new(),
                faults_seen: 0,
                insertions_seen: 0,
                removals_seen: 0,
                disconnected_samples: 0,
            },
            cfg,
            last_t: None,
            change_cursor: 0,
            faults: Vec::new(),
            partition_slack: 0.0,
            strong_edges: Vec::new(),
            level1_edges: Vec::new(),
            strong: WeightedGraph::new(0),
            kdist: Vec::new(),
            hops: Vec::new(),
            queue: Vec::new(),
            logical: Vec::new(),
        }
    }

    /// The current decaying allowance earned by past corruptions.
    fn fault_allowance(&self, t: f64) -> f64 {
        if !self.cfg.credit_faults {
            return 0.0;
        }
        self.faults
            .iter()
            .map(|f| {
                let draining = (t - f.at - self.cfg.recovery_latency).max(0.0);
                (f.magnitude - self.cfg.recovery_rate * draining).max(0.0)
            })
            .sum()
    }

    /// Checks the simulation's current instant against every bound
    /// family. Must be called at (weakly) increasing times; typically once
    /// per observation sample. Read-only on the simulation.
    ///
    /// # Panics
    ///
    /// Panics if called with time running backwards.
    pub fn observe(&mut self, sim: &Simulation) {
        let t = sim.now().as_secs();
        let dt = match self.last_t {
            Some(prev) => {
                assert!(t >= prev, "conformance samples must move forward in time");
                t - prev
            }
            None => 0.0,
        };

        // Replay the realized change log since the previous sample.
        let log = sim.change_log();
        for rec in &log[self.change_cursor..] {
            match *rec {
                ChangeRecord::ClockFault { at, amount, .. } => {
                    self.report.faults_seen += 1;
                    self.faults.push(FaultAllowance {
                        at,
                        magnitude: amount.abs(),
                    });
                }
                ChangeRecord::EdgeUp { .. } => self.report.insertions_seen += 1,
                ChangeRecord::EdgeDown { .. } => self.report.removals_seen += 1,
            }
        }
        self.change_cursor = log.len();
        // Drop fully drained allowances so long runs stay O(active faults).
        let (rate, latency) = (self.cfg.recovery_rate, self.cfg.recovery_latency);
        if rate > 0.0 {
            self.faults
                .retain(|f| f.magnitude - rate * (t - f.at - latency).max(0.0) > 0.0);
        }

        // Partition allowance: while the realized support is disconnected
        // the model bounds nothing across the cut — the components can
        // drift apart at the full logical-rate spread β − α (one side may
        // be catching up internally at β while the other coasts at α; the
        // steady-state 2ρ rate only holds once both transients settle), so
        // the envelope widens at that worst-case rate. Once reconnected
        // the excess drains like a corruption.
        if sim.graph().is_support_connected() {
            self.partition_slack = (self.partition_slack - rate * dt).max(0.0);
        } else {
            self.report.disconnected_samples += 1;
            self.partition_slack += (self.params.beta() - self.params.alpha()) * dt;
        }

        let allowance = self.fault_allowance(t) + self.partition_slack;
        let slack = self.cfg.slack;
        let n = sim.node_count();

        self.logical.clear();
        self.logical
            .extend((0..n).map(|u| sim.node(NodeId::from(u)).logical()));

        // 1. Global-skew envelope.
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &l in &self.logical {
            lo = lo.min(l);
            hi = hi.max(l);
        }
        self.report
            .global
            .record(t, hi - lo, self.cfg.g_hat + allowance + slack);

        // 2. Pairwise gradient bound over the fully inserted graph.
        sim.level_edges_into(u32::MAX, &mut self.strong_edges);
        debug_assert!(
            self.strong_edges.windows(2).all(|w| w[0] < w[1]),
            "level_edges_into yields strictly sorted edges (binary search below relies on it)"
        );
        self.strong.reset(n);
        for &e in &self.strong_edges {
            let kappa = sim
                .effective_kappa(e)
                .expect("fully inserted edge has both slots");
            self.strong.add_edge(e, kappa);
        }
        for u in 0..n {
            let lu = self.logical[u];
            self.strong.distances_into(NodeId::from(u), &mut self.kdist);
            self.strong
                .hop_distances_into(NodeId::from(u), &mut self.hops, &mut self.queue);
            for v in (u + 1)..n {
                let h = self.hops[v];
                if !h.is_finite() || h == 0.0 {
                    continue;
                }
                let skew = (lu - self.logical[v]).abs();
                let allowed =
                    gradient_bound(&self.params, self.cfg.g_hat, self.kdist[v]) + allowance + slack;
                self.report.gradient.record(t, skew, allowed);
                let d = h as u32;
                let idx = (d - 1) as usize;
                if self.report.per_hop.len() <= idx {
                    self.report.per_hop.resize(
                        idx + 1,
                        HopClass {
                            hops: 0,
                            pairs: 0,
                            worst_skew: 0.0,
                            min_margin: f64::INFINITY,
                            worst_utilization: 0.0,
                        },
                    );
                    for (i, class) in self.report.per_hop.iter_mut().enumerate() {
                        class.hops = i as u32 + 1;
                    }
                }
                let class = &mut self.report.per_hop[idx];
                class.pairs += 1;
                class.worst_skew = class.worst_skew.max(skew);
                class.min_margin = class.min_margin.min(allowed - skew);
                class.worst_utilization = class.worst_utilization.max(skew / allowed);
            }
        }

        // 3. Weak edges: unlocked to a finite level, not yet fully
        // inserted — only the level-s legality bound applies.
        sim.level_edges_into(1, &mut self.level1_edges);
        let sigma = self.params.sigma();
        for &e in &self.level1_edges {
            if self.strong_edges.binary_search(&e).is_ok() {
                continue;
            }
            let Some(gcs_core::edge_state::Level::Finite(s)) = sim.level_between(e.lo(), e.hi())
            else {
                continue;
            };
            debug_assert!(s >= 1, "level_edges(1) only returns unlocked edges");
            let Some(kappa) = sim.effective_kappa(e) else {
                continue;
            };
            let skew = (self.logical[e.lo().index()] - self.logical[e.hi().index()]).abs();
            let c_s = gradient_sequence(self.cfg.g_hat, sigma, s);
            let allowed = (f64::from(s) + 0.5) * kappa + c_s / 2.0 + allowance + slack;
            self.report.weak_edges.record(t, skew, allowed);
        }

        self.report.samples += 1;
        self.last_t = Some(t);
    }

    /// The report accumulated so far ([`observe`](Self::observe) updates
    /// it incrementally) — telemetry reads the running envelope
    /// utilization from here at every observation instant without
    /// consuming the checker.
    #[must_use]
    pub fn report_so_far(&self) -> &ConformanceReport {
        &self.report
    }

    /// Consumes the checker and returns the accumulated report.
    #[must_use]
    pub fn finish(self) -> ConformanceReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::SimBuilder;
    use gcs_net::Topology;
    use gcs_sim::DriftModel;

    fn sim(n: usize, seed: u64) -> Simulation {
        let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
        SimBuilder::new(params)
            .topology(Topology::line(n))
            .drift(DriftModel::TwoBlock)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn drive(sim: &mut Simulation, checker: &mut ConformanceChecker, until: f64, every: f64) {
        let mut t = sim.now().as_secs();
        checker.observe(sim);
        while t < until - 1e-12 {
            t = (t + every).min(until);
            sim.run_until_secs(t);
            checker.observe(sim);
        }
    }

    #[test]
    fn stabilized_line_conforms() {
        let mut s = sim(8, 1);
        let mut c = ConformanceChecker::new(&s, 0.5);
        drive(&mut s, &mut c, 20.0, 0.5);
        let r = c.finish();
        assert!(r.is_conformant(), "{:?}", r.violations());
        assert!(r.samples > 30);
        assert!(r.global.checks == r.samples);
        assert!(r.gradient.checks > 0);
        assert!(!r.per_hop.is_empty());
        assert_eq!(r.per_hop[0].hops, 1);
        // Margins are positive and utilization sane.
        assert!(r.global.min_margin > 0.0);
        assert!(r.global.worst_utilization < 1.0);
        assert!(r.first_violation().is_none());
    }

    #[test]
    fn corruption_is_forgiven_with_credit_and_caught_without() {
        let run = |credit: bool| -> ConformanceReport {
            let mut s = sim(6, 2);
            let mut cfg = OracleConfig::for_sim(&s, 0.5);
            cfg.credit_faults = credit;
            let mut c = ConformanceChecker::with_config(&s, cfg);
            drive(&mut s, &mut c, 5.0, 0.5);
            s.inject_clock_offset(NodeId(0), 2.0 * s.params().g_tilde().unwrap());
            drive(&mut s, &mut c, 15.0, 0.5);
            c.finish()
        };
        let forgiven = run(true);
        assert_eq!(forgiven.faults_seen, 1);
        assert!(
            forgiven.global.passed(),
            "self-stabilization allowance must absorb the injected fault: {:?}",
            forgiven.violations()
        );
        let strict = run(false);
        assert!(!strict.is_conformant(), "uncredited fault must violate");
        assert!(!strict.global.passed());
        assert!(
            strict.gradient.violations > 0,
            "a 2G^ corruption must also break the pairwise gradient bound"
        );
        let first = strict.first_violation().expect("violation time recorded");
        assert!((5.0..=6.0).contains(&first), "got {first}");
        assert!(strict.global.min_margin < 0.0);
        // The violation renders readably.
        let lines = strict.violations();
        assert!(!lines.is_empty());
        assert!(lines[0].contains("Thm 5.6"), "{lines:?}");
        let table = strict.to_table().to_string();
        assert!(table.contains("conformance"));
    }

    #[test]
    fn understated_anchor_trips_the_envelope() {
        // An absurdly small G^ shrinks the global envelope below any real
        // run (the gradient bound floors at 2 kappa_p, which honest runs
        // respect, so the violation surfaces in the global family).
        let mut s = sim(8, 3);
        let mut cfg = OracleConfig::for_sim(&s, 0.5);
        cfg.g_hat = 1e-7;
        cfg.slack = 0.0;
        let mut c = ConformanceChecker::with_config(&s, cfg);
        drive(&mut s, &mut c, 10.0, 0.5);
        let r = c.finish();
        assert!(!r.is_conformant());
        assert!(r.global.violations > 0);
        assert!(r.first_violation().is_some());
    }

    #[test]
    fn report_is_deterministic_for_identical_runs() {
        let run = || -> ConformanceReport {
            let mut s = sim(7, 9);
            let mut c = ConformanceChecker::new(&s, 0.25);
            drive(&mut s, &mut c, 8.0, 0.25);
            c.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn per_hop_classes_cover_the_diameter() {
        let mut s = sim(6, 4);
        let mut c = ConformanceChecker::new(&s, 0.5);
        drive(&mut s, &mut c, 6.0, 0.5);
        let r = c.finish();
        assert_eq!(r.per_hop.len(), 5, "line(6) has hop classes 1..=5");
        for (i, h) in r.per_hop.iter().enumerate() {
            assert_eq!(h.hops as usize, i + 1);
            assert!(h.pairs > 0);
            assert!(h.min_margin > 0.0);
        }
    }
}
