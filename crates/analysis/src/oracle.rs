//! Paper-bound conformance oracles: the theorems of Kuhn–Lenzen–Locher–
//! Oshman checked as machine oracles over a running simulation.
//!
//! Given the validated [`Params`] and the *realized* dynamic graph (the
//! level sets, effective weights, and the fault/insertion
//! [`change_log`](Simulation::change_log) of a live [`Simulation`]), a
//! [`ConformanceChecker`] verifies every sampled snapshot against three
//! bound families:
//!
//! 1. **Global-skew envelope** (Theorem 5.6): `G(t) ≤ Ĝ`, widened by a
//!    *decaying* self-stabilization allowance after every injected clock
//!    corruption (§5.2: excess skew drains at rate at least
//!    `µ(1−ρ) − 2ρ` once the flood bounds have re-converged) and by a
//!    *growing* `β − α` allowance while the realized graph is
//!    disconnected (across an open cut the model bounds nothing: the
//!    components' logical clocks can spread at the full rate envelope).
//! 2. **Gradient (local-skew) bound** (Theorem 5.22 via Lemma 5.14 and
//!    Corollary 7.10): for every pair connected in the *fully inserted*
//!    graph `G_∞(t)`, `|L_u − L_v| ≤ (s(p) + 1)·κ_p` with
//!    `s(p) = max{2 + ⌈log_σ(4Ĝ/κ_p)⌉, 1}` — the `O(log n)` gradient.
//!    Checked pairwise and aggregated per hop-distance class.
//! 3. **Weak-edge bound**: an edge still climbing the staged-insertion
//!    levels (unlocked to some finite `s ≥ 1`, not yet fully inserted) is
//!    only promised the level-`s` legality bound
//!    `(s + ½)·κ_e + C_s/2` with `C_s = 2Ĝ/σ^{max(s−2,0)}`
//!    (Definition 5.13 / Lemma 5.14) — for `s ≤ 2` that is ≈ `Ĝ`, which
//!    is exactly why fresh edges must not be held to the strong gradient.
//!
//! The checker is deterministic and read-only: feeding it bit-identical
//! snapshots produces bit-identical [`ConformanceReport`]s (the engine
//! equivalence suite leans on this).

use gcs_core::{ChangeRecord, Params, Simulation};
use gcs_net::{EdgeKey, NodeId};
use rand::{rngs::StdRng, Rng as _, SeedableRng as _};

use crate::legality::{gradient_bound, gradient_sequence};
use crate::paths::WeightedGraph;

/// Stratified pair-sampling mode for the gradient sweep — the
/// `--oracle-sample` knob that makes conformance practical at 10⁴–10⁵
/// nodes.
///
/// The exact gradient pass is all-pairs: one Dijkstra+BFS sweep per
/// source plus an `O(n)` pair loop, `O(n·(m log n + n))` per snapshot.
/// Sampled mode draws `K = max(min_sources, ⌈rate · n⌉)` *source* nodes
/// per snapshot from a seeded, deterministic RNG (a fresh draw at every
/// snapshot) and runs the identical sweep from only those sources,
/// against **every** target. Because one sweep touches every hop class
/// reachable from its source, each sampled source stratifies the checks
/// across the full hop-class range — no class is silently skipped, which
/// is what makes per-class worst-skew statistics meaningful under
/// sampling.
///
/// **Detection bound.** A fixed violating pair `(u, v)` is checked
/// whenever `u` or `v` is drawn. Drawing `K` of `n` sources without
/// replacement, the chance the pair escapes one snapshot is
/// `C(n−2, K)/C(n, K) = (n−K)(n−K−1)/(n(n−1)) ≤ (1 − rate)²`, and the
/// draws are independent across snapshots, so a violation persisting for
/// `S` sampled snapshots escapes the whole run with probability at most
/// `(1 − rate)^{2S}` (≈ `e^{−2·rate·S}`). [`escape_probability`]
/// evaluates the exact per-snapshot bound.
///
/// **Conservatism.** Every check sampled mode performs is one the exact
/// sweep also performs, with bit-identical arithmetic — so the sampled
/// report's worst case can only be *weaker*: per family and per hop
/// class, `worst_skew` and `worst_utilization` lower-bound the exact
/// sweep's and `min_margin` upper-bounds it, and sampled mode never
/// reports a violation the exact oracle would not. (Property-tested in
/// `tests/oracle_sampling.rs`.)
///
/// The draw depends only on `(seed, snapshot index, n)` — never on the
/// engine — so sampled reports are bit-identical across shard counts.
///
/// [`escape_probability`]: OracleSampling::escape_probability
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleSampling {
    /// Target fraction of sources swept per snapshot, in `(0, 1]`.
    pub rate: f64,
    /// Seed of the deterministic sampling RNG (mixed with the snapshot
    /// index so consecutive snapshots draw different strata).
    pub seed: u64,
    /// Coverage floor: at least this many sources per snapshot, so tiny
    /// graphs under an aggressive `rate` still get a meaningful sweep.
    pub min_sources: usize,
}

impl OracleSampling {
    /// Sampling at fraction `rate` with the default coverage floor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate ≤ 1`.
    #[must_use]
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "oracle sample rate must be in (0, 1], got {rate}"
        );
        OracleSampling {
            rate,
            seed,
            min_sources: 8,
        }
    }

    /// Sources drawn per snapshot on an `n`-node graph:
    /// `min(n, max(min_sources, ⌈rate · n⌉))`.
    #[must_use]
    pub fn sources_for(&self, n: usize) -> usize {
        let k = (self.rate * n as f64).ceil() as usize;
        k.max(self.min_sources).min(n)
    }

    /// The documented detection-probability knob: the exact probability
    /// that one fixed violating pair is missed by a single snapshot's
    /// draw, `(n−K)(n−K−1) / (n(n−1))` with `K =`
    /// [`sources_for`](Self::sources_for)`(n)` — at most `(1 − rate)²`.
    /// Independent draws per snapshot compound this exponentially for
    /// persistent violations.
    #[must_use]
    pub fn escape_probability(&self, n: usize) -> f64 {
        if n < 2 {
            return 0.0;
        }
        let k = self.sources_for(n) as f64;
        let n = n as f64;
        ((n - k) * (n - k - 1.0) / (n * (n - 1.0))).max(0.0)
    }
}

/// Tuning of the conformance envelope. Everything is derived from the
/// simulation's own parameters by [`OracleConfig::for_sim`]; the fields
/// are public so tests can sharpen or (deliberately) mis-specify them.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleConfig {
    /// The global-skew anchor `Ĝ` every bound is expressed against
    /// (normally the run's `G̃`, which Theorem 5.6 guarantees).
    pub g_hat: f64,
    /// Additive slack on every check: trigger discretization plus one
    /// sampling period of relative clock movement.
    pub slack: f64,
    /// Credited drain rate of the post-corruption allowance, seconds of
    /// skew per second. Half the guaranteed `µ(1−ρ) − 2ρ` by default —
    /// the guarantee holds once the flood bounds have re-converged, and
    /// halving it absorbs propagation hiccups.
    pub recovery_rate: f64,
    /// Seconds after a corruption before its allowance starts draining
    /// (the gossip rounds the §5.2 re-convergence needs).
    pub recovery_latency: f64,
    /// Whether injected clock faults earn a decaying allowance. Disabling
    /// this holds a corrupted run to the *undisturbed* envelope — the
    /// knob negative-path tests use to prove violations are caught.
    pub credit_faults: bool,
    /// Stratified pair sampling for the gradient sweep; `None` (the
    /// default) is the exact all-pairs pass. See [`OracleSampling`].
    pub sampling: Option<OracleSampling>,
}

impl OracleConfig {
    /// Derives the envelope configuration from a built simulation: `Ĝ`
    /// from the run's `G̃`, slack from the trigger discretization plus
    /// `sample_period` of relative drift, recovery from the paper's rate.
    ///
    /// # Panics
    ///
    /// Panics if the simulation carries no `G̃` (the builder always
    /// derives one) or `sample_period` is negative.
    #[must_use]
    pub fn for_sim(sim: &Simulation, sample_period: f64) -> Self {
        assert!(sample_period >= 0.0, "sample period must be non-negative");
        let params = sim.params();
        let g_hat = params
            .g_tilde()
            .expect("simulation builder always derives a G~");
        let rate = params.mu() * (1.0 - params.rho()) - 2.0 * params.rho();
        let gossip_hop = sim.refresh_interval() / params.alpha() + sim.tick_interval();
        OracleConfig {
            g_hat,
            slack: params.discretization_slack(sim.tick_interval())
                + sample_period * (params.beta() - params.alpha()),
            recovery_rate: (0.5 * rate).max(0.0),
            recovery_latency: sim.node_count() as f64 * gossip_hop,
            credit_faults: true,
            sampling: None,
        }
    }
}

/// Aggregated outcome of one bound family across all observed samples.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundCheck {
    /// Individual `(observed, allowed)` comparisons made.
    pub checks: u64,
    /// Comparisons where the observed value exceeded the allowed bound.
    pub violations: u64,
    /// Sample time of the first violation, if any.
    pub first_violation: Option<f64>,
    /// The tightest margin seen: `min(allowed − observed)`. Negative iff
    /// a violation occurred; `INFINITY` if nothing was checked.
    pub min_margin: f64,
    /// The worst utilization seen: `max(observed / allowed)`.
    pub worst_utilization: f64,
}

impl BoundCheck {
    fn new() -> Self {
        BoundCheck {
            checks: 0,
            violations: 0,
            first_violation: None,
            min_margin: f64::INFINITY,
            worst_utilization: 0.0,
        }
    }

    fn record(&mut self, t: f64, observed: f64, allowed: f64) {
        self.checks += 1;
        let margin = allowed - observed;
        if margin < self.min_margin {
            self.min_margin = margin;
        }
        let util = observed / allowed;
        if util > self.worst_utilization {
            self.worst_utilization = util;
        }
        if margin < 0.0 {
            self.violations += 1;
            if self.first_violation.is_none() {
                self.first_violation = Some(t);
            }
        }
    }

    /// Whether every comparison stayed within its bound.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations == 0
    }
}

/// Worst case observed for one hop-distance class of the fully inserted
/// graph — how the measured gradient compares against the Theorem 5.22
/// bound at each distance.
#[derive(Debug, Clone, PartialEq)]
pub struct HopClass {
    /// Hop distance `d ≥ 1` in `G_∞(t)`.
    pub hops: u32,
    /// Pair samples observed at this distance (across all instants).
    pub pairs: u64,
    /// Largest `|L_u − L_v|` seen at this distance.
    pub worst_skew: f64,
    /// Tightest margin (`allowed − observed`) seen at this distance.
    pub min_margin: f64,
    /// Worst `observed / allowed` at this distance.
    pub worst_utilization: f64,
}

/// The per-run verdict of the conformance oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceReport {
    /// The anchor `Ĝ` the bounds were expressed against.
    pub g_hat: f64,
    /// Additive slack applied to every bound.
    pub slack: f64,
    /// Snapshots observed.
    pub samples: u64,
    /// Global-skew envelope results (Theorem 5.6 + §5.2 allowance).
    pub global: BoundCheck,
    /// Pairwise gradient results over `G_∞(t)` (Theorem 5.22).
    pub gradient: BoundCheck,
    /// Weak-edge results (level-`s` legality, Lemma 5.14).
    pub weak_edges: BoundCheck,
    /// Per-hop-distance worst cases of the gradient check, `d = 1` first.
    pub per_hop: Vec<HopClass>,
    /// Total gradient sources swept under [`OracleSampling`], across all
    /// snapshots; `0` when the exact all-pairs mode ran.
    pub sampled_sources: u64,
    /// Clock corruptions replayed from the realized change log.
    pub faults_seen: u64,
    /// Scripted estimate corruptions replayed. These are *in-model*
    /// adversaries (the estimate layer is permitted exactly that error),
    /// so they earn no envelope allowance — counted for the record only.
    pub est_faults_seen: u64,
    /// Directed edge appearances replayed.
    pub insertions_seen: u64,
    /// Directed edge disappearances replayed.
    pub removals_seen: u64,
    /// Samples at which the realized graph was disconnected.
    pub disconnected_samples: u64,
}

impl ConformanceReport {
    /// Whether every check of every family passed.
    #[must_use]
    pub fn is_conformant(&self) -> bool {
        self.global.passed() && self.gradient.passed() && self.weak_edges.passed()
    }

    /// The chaos-search objective: the worst margin utilization observed
    /// across all three bound families, as `(family name, observed /
    /// allowed)`. `1.0` is a bound violation; the adversary search
    /// hill-climbs this toward it. Family order breaks exact ties
    /// (global, then gradient, then weak edges), so the extraction is
    /// deterministic.
    #[must_use]
    pub fn worst_utilization(&self) -> (&'static str, f64) {
        let mut worst = ("global", self.global.worst_utilization);
        for (name, check) in [
            ("gradient", &self.gradient),
            ("weak-edges", &self.weak_edges),
        ] {
            if check.worst_utilization > worst.1 {
                worst = (name, check.worst_utilization);
            }
        }
        worst
    }

    /// The earliest violation instant across all families, if any.
    #[must_use]
    pub fn first_violation(&self) -> Option<f64> {
        [&self.global, &self.gradient, &self.weak_edges]
            .into_iter()
            .filter_map(|c| c.first_violation)
            .min_by(f64::total_cmp)
    }

    /// One human-readable line per violated bound family.
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut push = |name: &str, c: &BoundCheck| {
            if !c.passed() {
                out.push(format!(
                    "{name}: {}/{} checks violated (first at t={:.3}s, worst margin {:.6})",
                    c.violations,
                    c.checks,
                    c.first_violation.unwrap_or(f64::NAN),
                    c.min_margin,
                ));
            }
        };
        push("global-skew envelope (Thm 5.6)", &self.global);
        push("gradient bound (Thm 5.22)", &self.gradient);
        push("weak-edge bound (Lemma 5.14)", &self.weak_edges);
        out
    }

    /// Renders the per-family and per-hop-class results as a printable
    /// [`Table`](crate::Table).
    #[must_use]
    pub fn to_table(&self) -> crate::Table {
        let mut t = crate::Table::new(
            format!(
                "conformance vs paper bounds (G^ = {:.4}, {} samples)",
                self.g_hat, self.samples
            ),
            &[
                "bound",
                "checks",
                "violations",
                "first viol.",
                "min margin",
                "worst use",
            ],
        );
        t.caption(
            "global = Theorem 5.6 envelope (with self-stabilization and partition \
             allowances); gradient = the Theorem 5.22 pairwise bound over the fully \
             inserted graph, also broken out per hop distance; weak d=... rows cover \
             edges still climbing the staged-insertion levels (Lemma 5.14).",
        );
        let fam = |t: &mut crate::Table, name: String, c: &BoundCheck| {
            t.row([
                name,
                c.checks.to_string(),
                c.violations.to_string(),
                c.first_violation
                    .map_or("-".to_string(), |v| format!("{v:.3}s")),
                if c.checks == 0 {
                    "-".to_string()
                } else {
                    crate::report::fmt_val(c.min_margin)
                },
                if c.checks == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}%", 100.0 * c.worst_utilization)
                },
            ]);
        };
        fam(&mut t, "global".to_string(), &self.global);
        fam(&mut t, "gradient".to_string(), &self.gradient);
        fam(&mut t, "weak edges".to_string(), &self.weak_edges);
        for h in &self.per_hop {
            t.row([
                format!("gradient d={}", h.hops),
                h.pairs.to_string(),
                "-".to_string(),
                "-".to_string(),
                crate::report::fmt_val(h.min_margin),
                format!("{:.1}%", 100.0 * h.worst_utilization),
            ]);
        }
        t
    }
}

/// One still-draining corruption allowance.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FaultAllowance {
    at: f64,
    magnitude: f64,
}

/// The incremental conformance oracle: feed it every sampled instant of a
/// run via [`observe`](ConformanceChecker::observe), then
/// [`finish`](ConformanceChecker::finish) it into a
/// [`ConformanceReport`].
#[derive(Debug, Clone)]
pub struct ConformanceChecker {
    cfg: OracleConfig,
    params: Params,
    last_t: Option<f64>,
    change_cursor: usize,
    faults: Vec<FaultAllowance>,
    partition_slack: f64,
    report: ConformanceReport,
    // Scratch reused across samples (the sweep is per-source Dijkstra+BFS).
    strong_edges: Vec<EdgeKey>,
    level1_edges: Vec<EdgeKey>,
    strong: WeightedGraph,
    kdist: Vec<f64>,
    hops: Vec<f64>,
    queue: Vec<u32>,
    logical: Vec<f64>,
    // Source-draw scratch for sampled mode (partial Fisher–Yates pool).
    pool: Vec<u32>,
    // Per-snapshot gradient-bound cache for weight-uniform strong graphs:
    // every hop-d node sits at the identical weighted distance, so the
    // bound is a pure function of d and the per-source Dijkstra is
    // skipped. `level_sums[d]` is the d-fold running sum of the common
    // weight; `allowed_by_hop[d]` the finished bound (NaN = not yet
    // computed). Both reset every observation instant.
    level_sums: Vec<f64>,
    allowed_by_hop: Vec<f64>,
    // Per-snapshot, per-hop-class sweep accumulators for weight-uniform
    // snapshots (indexed by d − 1): pair count and worst skew, all the
    // fused BFS sweep touches per pair. `fold_uniform_gradient` turns
    // them into `BoundCheck`/`HopClass` updates once per snapshot.
    class_pairs: Vec<u64>,
    class_skew: Vec<f64>,
}

impl ConformanceChecker {
    /// Creates a checker for the given simulation (reads `Params` and the
    /// derived envelope configuration; `sample_period` is the caller's
    /// observation grid, used only to size the discretization slack).
    #[must_use]
    pub fn new(sim: &Simulation, sample_period: f64) -> Self {
        Self::with_config(sim, OracleConfig::for_sim(sim, sample_period))
    }

    /// Creates a checker with an explicit configuration (tests use this to
    /// sharpen or deliberately mis-specify the envelope).
    ///
    /// # Panics
    ///
    /// Panics if `g_hat` is not positive and finite.
    #[must_use]
    pub fn with_config(sim: &Simulation, cfg: OracleConfig) -> Self {
        assert!(
            cfg.g_hat > 0.0 && cfg.g_hat.is_finite(),
            "g_hat must be positive and finite"
        );
        ConformanceChecker {
            params: sim.params().clone(),
            report: ConformanceReport {
                g_hat: cfg.g_hat,
                slack: cfg.slack,
                samples: 0,
                global: BoundCheck::new(),
                gradient: BoundCheck::new(),
                weak_edges: BoundCheck::new(),
                per_hop: Vec::new(),
                sampled_sources: 0,
                faults_seen: 0,
                est_faults_seen: 0,
                insertions_seen: 0,
                removals_seen: 0,
                disconnected_samples: 0,
            },
            cfg,
            last_t: None,
            change_cursor: 0,
            faults: Vec::new(),
            partition_slack: 0.0,
            strong_edges: Vec::new(),
            level1_edges: Vec::new(),
            strong: WeightedGraph::new(0),
            kdist: Vec::new(),
            hops: Vec::new(),
            queue: Vec::new(),
            logical: Vec::new(),
            pool: Vec::new(),
            level_sums: Vec::new(),
            allowed_by_hop: Vec::new(),
            class_pairs: Vec::new(),
            class_skew: Vec::new(),
        }
    }

    /// Draws this snapshot's source set into `self.pool[..K]` via a
    /// partial Fisher–Yates shuffle of the identity permutation, seeded
    /// from `(sampling.seed, snapshot index)` only — the draw is
    /// independent of the engine and of everything previously observed,
    /// so sampled reports are bit-identical across shard counts and a
    /// fresh stratum is swept at every snapshot.
    fn draw_sources(&mut self, n: usize) -> usize {
        let sampling = self.cfg.sampling.as_ref().expect("sampled mode");
        let k = sampling.sources_for(n);
        let snapshot_seed = sampling
            .seed
            .wrapping_add((self.report.samples + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(snapshot_seed);
        self.pool.clear();
        self.pool.extend(0..n as u32);
        for i in 0..k {
            let j = rng.gen_range(i..n);
            self.pool.swap(i, j);
        }
        k
    }

    /// The current decaying allowance earned by past corruptions.
    fn fault_allowance(&self, t: f64) -> f64 {
        if !self.cfg.credit_faults {
            return 0.0;
        }
        self.faults
            .iter()
            .map(|f| {
                let draining = (t - f.at - self.cfg.recovery_latency).max(0.0);
                (f.magnitude - self.cfg.recovery_rate * draining).max(0.0)
            })
            .sum()
    }

    /// Checks the simulation's current instant against every bound
    /// family. Must be called at (weakly) increasing times; typically once
    /// per observation sample. Read-only on the simulation.
    ///
    /// # Panics
    ///
    /// Panics if called with time running backwards.
    pub fn observe(&mut self, sim: &Simulation) {
        let t = sim.now().as_secs();
        let dt = match self.last_t {
            Some(prev) => {
                assert!(t >= prev, "conformance samples must move forward in time");
                t - prev
            }
            None => 0.0,
        };

        // Replay the realized change log since the previous sample.
        let log = sim.change_log();
        for rec in &log[self.change_cursor..] {
            match *rec {
                ChangeRecord::ClockFault { at, amount, .. } => {
                    self.report.faults_seen += 1;
                    self.faults.push(FaultAllowance {
                        at,
                        magnitude: amount.abs(),
                    });
                }
                // In-model by construction (the scripted bias is clamped
                // into the advertised ±ε envelope), so no allowance.
                ChangeRecord::EstimateFault { .. } => self.report.est_faults_seen += 1,
                ChangeRecord::EdgeUp { .. } => self.report.insertions_seen += 1,
                ChangeRecord::EdgeDown { .. } => self.report.removals_seen += 1,
            }
        }
        self.change_cursor = log.len();
        // Drop fully drained allowances so long runs stay O(active faults).
        let (rate, latency) = (self.cfg.recovery_rate, self.cfg.recovery_latency);
        if rate > 0.0 {
            self.faults
                .retain(|f| f.magnitude - rate * (t - f.at - latency).max(0.0) > 0.0);
        }

        // Partition allowance: while the realized support is disconnected
        // the model bounds nothing across the cut — the components can
        // drift apart at the full logical-rate spread β − α (one side may
        // be catching up internally at β while the other coasts at α; the
        // steady-state 2ρ rate only holds once both transients settle), so
        // the envelope widens at that worst-case rate. Once reconnected
        // the excess drains like a corruption.
        if sim.graph().is_support_connected() {
            self.partition_slack = (self.partition_slack - rate * dt).max(0.0);
        } else {
            self.report.disconnected_samples += 1;
            self.partition_slack += (self.params.beta() - self.params.alpha()) * dt;
        }

        let allowance = self.fault_allowance(t) + self.partition_slack;
        let slack = self.cfg.slack;
        let n = sim.node_count();

        self.logical.clear();
        self.logical
            .extend((0..n).map(|u| sim.node(NodeId::from(u)).logical()));

        // 1. Global-skew envelope.
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &l in &self.logical {
            lo = lo.min(l);
            hi = hi.max(l);
        }
        self.report
            .global
            .record(t, hi - lo, self.cfg.g_hat + allowance + slack);

        // 2. Pairwise gradient bound over the fully inserted graph.
        sim.level_edges_into(u32::MAX, &mut self.strong_edges);
        debug_assert!(
            self.strong_edges.windows(2).all(|w| w[0] < w[1]),
            "level_edges_into yields strictly sorted edges (binary search below relies on it)"
        );
        self.strong.reset(n);
        for &e in &self.strong_edges {
            let kappa = sim
                .effective_kappa(e)
                .expect("fully inserted edge has both slots");
            self.strong.add_edge(e, kappa);
        }
        // The hop-class bound cache is per snapshot: the allowance, the
        // slack, and the realized weights all move between instants.
        self.level_sums.clear();
        self.allowed_by_hop.clear();
        self.class_pairs.clear();
        self.class_skew.clear();
        if self.cfg.sampling.is_some() {
            // Sampled mode: sweep only this snapshot's drawn sources, but
            // against every target (`v ≠ u`), so each sweep stratifies
            // the checks across the source's full hop-class range. Every
            // check is one the exact pass also makes, with identical
            // arithmetic — the sampled report is a conservative
            // projection of the exact one.
            let k = self.draw_sources(n);
            self.report.sampled_sources += k as u64;
            for i in 0..k {
                let u = self.pool[i] as usize;
                self.sweep_gradient_source(u, 0, t, allowance, slack);
            }
            self.fold_uniform_gradient(t, allowance, slack, Some(k));
        } else {
            for u in 0..n {
                self.sweep_gradient_source(u, u + 1, t, allowance, slack);
            }
            self.fold_uniform_gradient(t, allowance, slack, None);
        }

        // 3. Weak edges: unlocked to a finite level, not yet fully
        // inserted — only the level-s legality bound applies.
        sim.level_edges_into(1, &mut self.level1_edges);
        let sigma = self.params.sigma();
        for &e in &self.level1_edges {
            if self.strong_edges.binary_search(&e).is_ok() {
                continue;
            }
            let Some(gcs_core::edge_state::Level::Finite(s)) = sim.level_between(e.lo(), e.hi())
            else {
                continue;
            };
            debug_assert!(s >= 1, "level_edges(1) only returns unlocked edges");
            let Some(kappa) = sim.effective_kappa(e) else {
                continue;
            };
            let skew = (self.logical[e.lo().index()] - self.logical[e.hi().index()]).abs();
            let c_s = gradient_sequence(self.cfg.g_hat, sigma, s);
            let allowed = (f64::from(s) + 0.5) * kappa + c_s / 2.0 + allowance + slack;
            self.report.weak_edges.record(t, skew, allowed);
        }

        self.report.samples += 1;
        self.last_t = Some(t);
    }

    /// One source's slice of the pairwise gradient check: Dijkstra + BFS
    /// from `u` over the current strong graph (reusing the shared
    /// scratch), then the Theorem 5.22 bound for every target `v` in
    /// `v_lo..n`, `v ≠ u`. The exact pass calls this with `v_lo = u + 1`
    /// (each unordered pair once); sampled mode with `v_lo = 0` (a drawn
    /// source checks all its pairs — a pair whose both endpoints are
    /// drawn is recorded twice, which leaves every worst-case statistic
    /// unchanged because skew and bound are symmetric in `u, v`).
    fn sweep_gradient_source(&mut self, u: usize, v_lo: usize, t: f64, allowance: f64, slack: f64) {
        let lu = self.logical[u];
        // Weight-uniform strong graphs (every fully-inserted edge at the
        // identical κ — the common case away from decaying insertions)
        // skip the Dijkstra: the weighted distance to a hop-d target is
        // the d-fold running sum of the common weight, so the bound is a
        // pure function of the hop class. The sweep then only accumulates
        // each class's pair count and worst skew (BFS order, reading the
        // reached nodes straight off the BFS queue); the per-class bound
        // comparison, utilization, and margin are folded into the report
        // once per snapshot by [`fold_uniform_gradient`]. Bit-identical
        // to the general path: Dijkstra settles a hop-d node via a
        // hop-(d−1) predecessor at exactly the running sum, division by a
        // (positive) bound and subtraction from it are monotone in the
        // skew, and running min/max are order-invariant. This is what
        // keeps the sampled oracle at 10⁵-node scale inside the CI smoke
        // budget: the hot loop is two loads, a subtract, and a compare
        // per pair.
        if self.strong.uniform_weight().is_some() {
            self.strong
                .hop_distances_into(NodeId::from(u), &mut self.hops, &mut self.queue);
            let queue = std::mem::take(&mut self.queue);
            for &vq in &queue {
                let v = vq as usize;
                if v < v_lo {
                    continue;
                }
                let h = self.hops[v];
                if h == 0.0 {
                    continue;
                }
                let idx = h as usize - 1;
                if idx >= self.class_pairs.len() {
                    self.class_pairs.resize(idx + 1, 0);
                    self.class_skew.resize(idx + 1, 0.0);
                }
                self.class_pairs[idx] += 1;
                let skew = (lu - self.logical[v]).abs();
                if skew > self.class_skew[idx] {
                    self.class_skew[idx] = skew;
                }
            }
            self.queue = queue;
            return;
        }
        self.strong.distances_into(NodeId::from(u), &mut self.kdist);
        self.strong
            .hop_distances_into(NodeId::from(u), &mut self.hops, &mut self.queue);
        for v in v_lo..self.logical.len() {
            let h = self.hops[v];
            if !h.is_finite() || h == 0.0 {
                continue;
            }
            let skew = (lu - self.logical[v]).abs();
            let d = h as u32;
            let allowed =
                gradient_bound(&self.params, self.cfg.g_hat, self.kdist[v]) + allowance + slack;
            self.report.gradient.record(t, skew, allowed);
            let idx = (d - 1) as usize;
            self.grow_per_hop(idx);
            let class = &mut self.report.per_hop[idx];
            class.pairs += 1;
            class.worst_skew = class.worst_skew.max(skew);
            class.min_margin = class.min_margin.min(allowed - skew);
            class.worst_utilization = class.worst_utilization.max(skew / allowed);
        }
    }

    /// Ensures `report.per_hop` covers class index `idx`, keeping the
    /// `hops` labels dense.
    fn grow_per_hop(&mut self, idx: usize) {
        if self.report.per_hop.len() <= idx {
            self.report.per_hop.resize(
                idx + 1,
                HopClass {
                    hops: 0,
                    pairs: 0,
                    worst_skew: 0.0,
                    min_margin: f64::INFINITY,
                    worst_utilization: 0.0,
                },
            );
            for (i, class) in self.report.per_hop.iter_mut().enumerate() {
                class.hops = i as u32 + 1;
            }
        }
    }

    /// Folds the per-class `(pairs, worst skew)` accumulators of a
    /// weight-uniform snapshot into the report — the per-class equivalent
    /// of calling [`BoundCheck::record`] for every pair, exploiting that
    /// all pairs of a class share one bound. Violation *counts* need the
    /// individual skews, so a snapshot whose worst class skew breaches its
    /// bound takes a second sweep over the same sources to tally them —
    /// the rare path, only ever paid by non-conformant runs.
    ///
    /// No-op on non-uniform snapshots (the general sweep records inline).
    fn fold_uniform_gradient(
        &mut self,
        t: f64,
        allowance: f64,
        slack: f64,
        sampled_k: Option<usize>,
    ) {
        let Some(w) = self.strong.uniform_weight() else {
            return;
        };
        let mut violating = false;
        for idx in 0..self.class_pairs.len() {
            let pairs = self.class_pairs[idx];
            if pairs == 0 {
                continue;
            }
            let maxskew = self.class_skew[idx];
            let allowed = self.allowed_at_hop(idx as u32 + 1, w, allowance, slack);
            debug_assert!(allowed > 0.0, "gradient bounds are strictly positive");
            let margin = allowed - maxskew;
            let util = maxskew / allowed;
            let gradient = &mut self.report.gradient;
            gradient.checks += pairs;
            if margin < gradient.min_margin {
                gradient.min_margin = margin;
            }
            if util > gradient.worst_utilization {
                gradient.worst_utilization = util;
            }
            if margin < 0.0 {
                violating = true;
            }
            self.grow_per_hop(idx);
            let class = &mut self.report.per_hop[idx];
            class.pairs += pairs;
            class.worst_skew = class.worst_skew.max(maxskew);
            class.min_margin = class.min_margin.min(margin);
            class.worst_utilization = class.worst_utilization.max(util);
        }
        if violating {
            let mut viol = 0u64;
            match sampled_k {
                Some(k) => {
                    for i in 0..k {
                        let u = self.pool[i] as usize;
                        viol += self.count_uniform_violations(u, 0);
                    }
                }
                None => {
                    for u in 0..self.logical.len() {
                        viol += self.count_uniform_violations(u, u + 1);
                    }
                }
            }
            debug_assert!(viol > 0, "a breached class implies a breached pair");
            self.report.gradient.violations += viol;
            if self.report.gradient.first_violation.is_none() {
                self.report.gradient.first_violation = Some(t);
            }
        }
    }

    /// Re-sweeps one source of a weight-uniform snapshot and counts pairs
    /// whose skew breaches the (already cached) hop-class bound — the slow
    /// half of [`fold_uniform_gradient`]'s violation tally.
    fn count_uniform_violations(&mut self, u: usize, v_lo: usize) -> u64 {
        self.strong
            .hop_distances_into(NodeId::from(u), &mut self.hops, &mut self.queue);
        let lu = self.logical[u];
        let queue = std::mem::take(&mut self.queue);
        let mut viol = 0u64;
        for &vq in &queue {
            let v = vq as usize;
            if v < v_lo {
                continue;
            }
            let h = self.hops[v];
            if h == 0.0 {
                continue;
            }
            let skew = (lu - self.logical[v]).abs();
            if self.allowed_by_hop[h as usize] - skew < 0.0 {
                viol += 1;
            }
        }
        self.queue = queue;
        viol
    }

    /// The cached gradient bound for a hop-`d` target on a weight-uniform
    /// strong graph. `level_sums[d]` accumulates the common weight by
    /// repeated addition — the exact floating-point value Dijkstra
    /// produces along a shortest `d`-hop path — and `allowed_by_hop[d]`
    /// memoizes the finished bound (the bound itself is finite, so NaN is
    /// a free "not yet computed" sentinel).
    fn allowed_at_hop(&mut self, d: u32, w: f64, allowance: f64, slack: f64) -> f64 {
        let idx = d as usize;
        if self.level_sums.is_empty() {
            self.level_sums.push(0.0);
        }
        while self.level_sums.len() <= idx {
            let last = self.level_sums[self.level_sums.len() - 1];
            self.level_sums.push(last + w);
        }
        while self.allowed_by_hop.len() <= idx {
            self.allowed_by_hop.push(f64::NAN);
        }
        if self.allowed_by_hop[idx].is_nan() {
            self.allowed_by_hop[idx] =
                gradient_bound(&self.params, self.cfg.g_hat, self.level_sums[idx])
                    + allowance
                    + slack;
        }
        self.allowed_by_hop[idx]
    }

    /// The report accumulated so far ([`observe`](Self::observe) updates
    /// it incrementally) — telemetry reads the running envelope
    /// utilization from here at every observation instant without
    /// consuming the checker.
    #[must_use]
    pub fn report_so_far(&self) -> &ConformanceReport {
        &self.report
    }

    /// Consumes the checker and returns the accumulated report.
    #[must_use]
    pub fn finish(self) -> ConformanceReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::SimBuilder;
    use gcs_net::Topology;
    use gcs_sim::DriftModel;

    fn sim(n: usize, seed: u64) -> Simulation {
        let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
        SimBuilder::new(params)
            .topology(Topology::line(n))
            .drift(DriftModel::TwoBlock)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn drive(sim: &mut Simulation, checker: &mut ConformanceChecker, until: f64, every: f64) {
        let mut t = sim.now().as_secs();
        checker.observe(sim);
        while t < until - 1e-12 {
            t = (t + every).min(until);
            sim.run_until_secs(t);
            checker.observe(sim);
        }
    }

    #[test]
    fn stabilized_line_conforms() {
        let mut s = sim(8, 1);
        let mut c = ConformanceChecker::new(&s, 0.5);
        drive(&mut s, &mut c, 20.0, 0.5);
        let r = c.finish();
        assert!(r.is_conformant(), "{:?}", r.violations());
        assert!(r.samples > 30);
        assert!(r.global.checks == r.samples);
        assert!(r.gradient.checks > 0);
        assert!(!r.per_hop.is_empty());
        assert_eq!(r.per_hop[0].hops, 1);
        // Margins are positive and utilization sane.
        assert!(r.global.min_margin > 0.0);
        assert!(r.global.worst_utilization < 1.0);
        assert!(r.first_violation().is_none());
    }

    #[test]
    fn corruption_is_forgiven_with_credit_and_caught_without() {
        let run = |credit: bool| -> ConformanceReport {
            let mut s = sim(6, 2);
            let mut cfg = OracleConfig::for_sim(&s, 0.5);
            cfg.credit_faults = credit;
            let mut c = ConformanceChecker::with_config(&s, cfg);
            drive(&mut s, &mut c, 5.0, 0.5);
            s.inject_clock_offset(NodeId(0), 2.0 * s.params().g_tilde().unwrap());
            drive(&mut s, &mut c, 15.0, 0.5);
            c.finish()
        };
        let forgiven = run(true);
        assert_eq!(forgiven.faults_seen, 1);
        assert!(
            forgiven.global.passed(),
            "self-stabilization allowance must absorb the injected fault: {:?}",
            forgiven.violations()
        );
        let strict = run(false);
        assert!(!strict.is_conformant(), "uncredited fault must violate");
        assert!(!strict.global.passed());
        assert!(
            strict.gradient.violations > 0,
            "a 2G^ corruption must also break the pairwise gradient bound"
        );
        let first = strict.first_violation().expect("violation time recorded");
        assert!((5.0..=6.0).contains(&first), "got {first}");
        assert!(strict.global.min_margin < 0.0);
        // The violation renders readably.
        let lines = strict.violations();
        assert!(!lines.is_empty());
        assert!(lines[0].contains("Thm 5.6"), "{lines:?}");
        let table = strict.to_table().to_string();
        assert!(table.contains("conformance"));
    }

    #[test]
    fn worst_utilization_picks_the_tightest_family_deterministically() {
        let mut s = sim(8, 1);
        let mut c = ConformanceChecker::new(&s, 0.5);
        drive(&mut s, &mut c, 20.0, 0.5);
        let r = c.finish();
        let (family, util) = r.worst_utilization();
        assert!(util > 0.0 && util < 1.0, "{family}: {util}");
        let max = r
            .global
            .worst_utilization
            .max(r.gradient.worst_utilization)
            .max(r.weak_edges.worst_utilization);
        assert_eq!(util, max);
    }

    #[test]
    fn scripted_estimate_faults_are_counted_but_earn_no_allowance() {
        let run = |bias: Option<f64>| -> ConformanceReport {
            let mut s = sim(6, 2);
            let mut c = ConformanceChecker::new(&s, 0.5);
            drive(&mut s, &mut c, 5.0, 0.5);
            if let Some(b) = bias {
                s.inject_estimate_bias(NodeId(0), b);
            }
            drive(&mut s, &mut c, 15.0, 0.5);
            c.finish()
        };
        let clean = run(None);
        let biased = run(Some(1.0));
        assert_eq!(clean.est_faults_seen, 0);
        assert_eq!(biased.est_faults_seen, 1);
        assert_eq!(biased.faults_seen, 0, "no clock corruption was injected");
        // The scripted corruption is in-model: the run must still conform
        // without any fault allowance having been granted.
        assert!(biased.is_conformant(), "{:?}", biased.violations());
    }

    #[test]
    fn understated_anchor_trips_the_envelope() {
        // An absurdly small G^ shrinks the global envelope below any real
        // run (the gradient bound floors at 2 kappa_p, which honest runs
        // respect, so the violation surfaces in the global family).
        let mut s = sim(8, 3);
        let mut cfg = OracleConfig::for_sim(&s, 0.5);
        cfg.g_hat = 1e-7;
        cfg.slack = 0.0;
        let mut c = ConformanceChecker::with_config(&s, cfg);
        drive(&mut s, &mut c, 10.0, 0.5);
        let r = c.finish();
        assert!(!r.is_conformant());
        assert!(r.global.violations > 0);
        assert!(r.first_violation().is_some());
    }

    #[test]
    fn report_is_deterministic_for_identical_runs() {
        let run = || -> ConformanceReport {
            let mut s = sim(7, 9);
            let mut c = ConformanceChecker::new(&s, 0.25);
            drive(&mut s, &mut c, 8.0, 0.25);
            c.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sampled_mode_is_a_conservative_projection_of_exact() {
        // The same run observed by an exact and a sampled checker: every
        // sampled statistic must be a conservative projection (sampled
        // worst case ≤ exact worst case, sampled margin ≥ exact margin).
        let run = |sampling: Option<OracleSampling>| -> ConformanceReport {
            let mut s = sim(24, 11);
            let mut cfg = OracleConfig::for_sim(&s, 0.5);
            cfg.sampling = sampling;
            let mut c = ConformanceChecker::with_config(&s, cfg);
            drive(&mut s, &mut c, 10.0, 0.5);
            c.finish()
        };
        let exact = run(None);
        let sampled = run(Some(OracleSampling::new(0.25, 7)));
        assert_eq!(exact.sampled_sources, 0);
        assert!(sampled.sampled_sources > 0);
        assert!(sampled.gradient.checks > 0);
        assert!(sampled.gradient.checks < exact.gradient.checks);
        assert!(sampled.gradient.worst_utilization <= exact.gradient.worst_utilization);
        assert!(sampled.gradient.min_margin >= exact.gradient.min_margin);
        assert!(sampled.per_hop.len() <= exact.per_hop.len());
        for (s_class, e_class) in sampled.per_hop.iter().zip(&exact.per_hop) {
            assert_eq!(s_class.hops, e_class.hops);
            assert!(s_class.worst_skew <= e_class.worst_skew);
            assert!(s_class.min_margin >= e_class.min_margin);
        }
        // Non-gradient families are untouched by sampling.
        assert_eq!(sampled.global, exact.global);
        assert_eq!(sampled.weak_edges, exact.weak_edges);
    }

    #[test]
    fn sampled_mode_is_deterministic_and_seed_dependent() {
        let run = |oracle_seed: u64| -> ConformanceReport {
            let mut s = sim(20, 3);
            let mut cfg = OracleConfig::for_sim(&s, 0.5);
            cfg.sampling = Some(OracleSampling::new(0.3, oracle_seed));
            let mut c = ConformanceChecker::with_config(&s, cfg);
            drive(&mut s, &mut c, 6.0, 0.5);
            c.finish()
        };
        assert_eq!(run(42), run(42), "same sampling seed, same report");
        let (a, b) = (run(1), run(2));
        assert_eq!(a.sampled_sources, b.sampled_sources);
        // Different sampling seeds draw different source positions, which
        // shows up in the per-hop-class coverage counts (on a line, how
        // many targets a source has at distance d depends on where the
        // source sits).
        let coverage =
            |r: &ConformanceReport| r.per_hop.iter().map(|h| h.pairs).collect::<Vec<_>>();
        assert_ne!(
            coverage(&a),
            coverage(&b),
            "different sampling seeds must draw different strata"
        );
    }

    #[test]
    fn sampling_knobs_have_documented_shapes() {
        let s = OracleSampling::new(0.01, 0);
        assert_eq!(s.sources_for(100_000), 1000);
        assert_eq!(s.sources_for(4), 4, "floor clamps to n on tiny graphs");
        assert_eq!(s.sources_for(500), 8, "min_sources floor applies");
        // The per-snapshot escape bound is ≤ (1 − rate)² once past the
        // floor, and exactly (n−K)(n−K−1)/(n(n−1)).
        let p = s.escape_probability(100_000);
        assert!(p < (1.0 - 0.01f64).powi(2) + 1e-12, "{p}");
        assert!(p > 0.97, "{p}");
        assert_eq!(s.escape_probability(4), 0.0, "full sweep misses nothing");
        // A full-rate sampler is exhaustive.
        assert_eq!(OracleSampling::new(1.0, 0).sources_for(33), 33);
        assert_eq!(OracleSampling::new(1.0, 0).escape_probability(33), 0.0);
    }

    #[test]
    #[should_panic(expected = "oracle sample rate")]
    fn rejects_out_of_range_rate() {
        let _ = OracleSampling::new(0.0, 1);
    }

    #[test]
    fn sampled_mode_still_catches_a_global_scale_violation() {
        // An uncredited 2Ĝ corruption breaks neighbouring pairs badly
        // enough that even a thin sample sees it: the corrupted node is
        // a target of every drawn source.
        let mut s = sim(16, 5);
        let mut cfg = OracleConfig::for_sim(&s, 0.5);
        cfg.credit_faults = false;
        cfg.sampling = Some(OracleSampling::new(0.2, 9));
        let mut c = ConformanceChecker::with_config(&s, cfg);
        drive(&mut s, &mut c, 5.0, 0.5);
        s.inject_clock_offset(NodeId(0), 2.0 * s.params().g_tilde().unwrap());
        drive(&mut s, &mut c, 12.0, 0.5);
        let r = c.finish();
        assert!(!r.is_conformant());
        assert!(r.gradient.violations > 0);
    }

    #[test]
    fn per_hop_classes_cover_the_diameter() {
        let mut s = sim(6, 4);
        let mut c = ConformanceChecker::new(&s, 0.5);
        drive(&mut s, &mut c, 6.0, 0.5);
        let r = c.finish();
        assert_eq!(r.per_hop.len(), 5, "line(6) has hop classes 1..=5");
        for (i, h) in r.per_hop.iter().enumerate() {
            assert_eq!(h.hops as usize, i + 1);
            assert!(h.pairs > 0);
            assert!(h.min_margin > 0.0);
        }
    }
}
