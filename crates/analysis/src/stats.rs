//! Small summary-statistics helpers for experiment reporting.

/// Arithmetic mean; 0 for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Maximum; 0 for an empty slice.
#[must_use]
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// Population standard deviation; 0 for slices with fewer than 2 values.
#[must_use]
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation on sorted data.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
#[must_use]
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Ordinary least-squares slope of `y` against `x` (for growth-rate
/// estimation in experiment tables). Returns 0 when degenerate.
#[must_use]
pub fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 0.0;
    }
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for &(x, y) in points {
        num += (x - mx) * (y - my);
        den += (x - mx) * (x - mx);
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Log-log slope: the exponent `b` of the best-fit `y = a·x^b`. Points with
/// non-positive coordinates are skipped.
#[must_use]
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let logged: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    slope(&logged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_max() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(max(&[1.0, 3.0, 2.0]), 3.0);
    }

    #[test]
    fn stddev_matches_hand_computation() {
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert_eq!(stddev(&[2.0, 2.0, 2.0]), 0.0);
        // Population stddev of {1, 2, 3, 4} is sqrt(1.25).
        assert!((stddev(&[1.0, 2.0, 3.0, 4.0]) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
    }

    #[test]
    fn slope_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((slope(&pts) - 3.0).abs() < 1e-12);
        assert_eq!(slope(&pts[..1]), 0.0);
    }

    #[test]
    fn loglog_slope_recovers_exponent() {
        let pts: Vec<(f64, f64)> = (1..20)
            .map(|i| (i as f64, 2.0 * (i as f64).powf(0.5)))
            .collect();
        assert!((loglog_slope(&pts) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_range_checked() {
        let _ = quantile(&[1.0], 1.5);
    }
}
