//! Shortest κ-weighted paths over level graphs.
//!
//! The gradient analysis reasons about *level-s paths* (Definition 5.9):
//! paths all of whose edges lie in `E_s(t)`. The relevant quantity for the
//! potentials and the legality checker is the minimum path weight
//! `κ_p` between node pairs, computed here with Dijkstra from every source
//! (`O(n · m · log n)`, fine for the network sizes the experiments use).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gcs_core::Simulation;
use gcs_net::{EdgeKey, NodeId};

/// A dense all-pairs distance matrix; `f64::INFINITY` marks unreachable
/// pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<f64>,
}

impl DistanceMatrix {
    /// Distance from `u` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if a node is out of range.
    #[must_use]
    pub fn get(&self, u: NodeId, v: NodeId) -> f64 {
        self.dist[u.index() * self.n + v.index()]
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The largest finite distance (the weighted diameter), or `None` if
    /// some pair is unreachable or the matrix is trivial.
    #[must_use]
    pub fn diameter(&self) -> Option<f64> {
        let mut best = 0.0f64;
        for u in 0..self.n {
            for v in 0..self.n {
                let d = self.dist[u * self.n + v];
                if d.is_infinite() {
                    return None;
                }
                best = best.max(d);
            }
        }
        Some(best)
    }
}

/// Weighted edge list of an undirected graph on `n` nodes.
#[derive(Debug, Clone, Default)]
pub struct WeightedGraph {
    n: usize,
    adj: Vec<Vec<(usize, f64)>>,
    // Weight-uniformity tracking: `Some(w)` while every edge added since
    // the last reset carries the bitwise-identical weight `w`; `None`
    // before the first edge and forever after weights diverge.
    uniform: Option<f64>,
    mixed: bool,
}

impl WeightedGraph {
    /// An empty graph on `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        WeightedGraph {
            n,
            adj: vec![Vec::new(); n],
            uniform: None,
            mixed: false,
        }
    }

    /// Adds an undirected edge with the given positive weight.
    ///
    /// # Panics
    ///
    /// Panics if the weight is not finite and positive or a node is out of
    /// range.
    pub fn add_edge(&mut self, e: EdgeKey, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "edge weight must be positive, got {weight}"
        );
        assert!(e.hi().index() < self.n, "edge {e} out of range");
        match self.uniform {
            None if !self.mixed => self.uniform = Some(weight),
            Some(w) if w.to_bits() == weight.to_bits() => {}
            Some(_) => {
                self.uniform = None;
                self.mixed = true;
            }
            None => {}
        }
        self.adj[e.lo().index()].push((e.hi().index(), weight));
        self.adj[e.hi().index()].push((e.lo().index(), weight));
    }

    /// The common weight of every edge, if the graph is *weight-uniform*:
    /// at least one edge, and every weight bitwise-identical. On such a
    /// graph [`distances_into`](Self::distances_into) degenerates to hop
    /// counting — the shortest weighted path to a hop-`d` node is the
    /// `d`-fold left-to-right sum of the common weight — which analysis
    /// sweeps exploit to skip the per-source Dijkstra entirely at engine
    /// scale.
    #[must_use]
    pub fn uniform_weight(&self) -> Option<f64> {
        self.uniform
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Clears every edge and resizes to `n` nodes, keeping the per-node
    /// adjacency allocations — per-sample analysis loops (the conformance
    /// oracle rebuilds the strong graph at every observation instant)
    /// reuse one graph instead of reallocating `n` vectors each time.
    pub fn reset(&mut self, n: usize) {
        self.adj.iter_mut().for_each(Vec::clear);
        self.adj.resize_with(n, Vec::new);
        self.n = n;
        self.uniform = None;
        self.mixed = false;
    }

    /// Breadth-first *hop* distances from one source (every edge counts 1),
    /// into a caller-provided buffer — the cheap companion to the weighted
    /// [`distances_from`](WeightedGraph::distances_from) when both metrics
    /// are needed over the same edge set. `f64::INFINITY` marks unreachable
    /// nodes, matching the Dijkstra convention (and bit-identical to
    /// unit-weight Dijkstra: hop counts are exact small-integer sums).
    pub fn hop_distances_into(&self, src: NodeId, dist: &mut Vec<f64>, queue: &mut Vec<u32>) {
        dist.clear();
        dist.resize(self.n, f64::INFINITY);
        queue.clear();
        dist[src.index()] = 0.0;
        queue.push(src.index() as u32);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            let next = dist[u] + 1.0;
            for &(v, _) in &self.adj[u] {
                if dist[v].is_infinite() {
                    dist[v] = next;
                    queue.push(v as u32);
                }
            }
        }
    }

    /// Dijkstra from one source.
    #[must_use]
    pub fn distances_from(&self, src: NodeId) -> Vec<f64> {
        let mut dist = vec![f64::INFINITY; self.n];
        self.distances_into(src, &mut dist);
        dist
    }

    /// Dijkstra from one source into a caller-provided buffer (resized and
    /// overwritten) — the per-sample analysis loops reuse one allocation.
    pub fn distances_into(&self, src: NodeId, dist: &mut Vec<f64>) {
        #[derive(PartialEq)]
        struct Entry(f64, usize);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on distance.
                other
                    .0
                    .partial_cmp(&self.0)
                    .expect("distances are never NaN")
                    .then(other.1.cmp(&self.1))
            }
        }

        dist.clear();
        dist.resize(self.n, f64::INFINITY);
        let mut heap = BinaryHeap::new();
        dist[src.index()] = 0.0;
        heap.push(Entry(0.0, src.index()));
        while let Some(Entry(d, u)) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, w) in &self.adj[u] {
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    heap.push(Entry(nd, v));
                }
            }
        }
    }

    /// All-pairs shortest distances.
    #[must_use]
    pub fn all_pairs(&self) -> DistanceMatrix {
        let mut dist = Vec::with_capacity(self.n * self.n);
        for u in 0..self.n {
            dist.extend(self.distances_from(NodeId::from(u)));
        }
        DistanceMatrix { n: self.n, dist }
    }
}

/// The level-`s` graph `E_s(t)` of a running simulation, weighted by the
/// *effective* `κ` (which, under the decaying-weight insertion strategy,
/// may still be inflated for fresh edges).
#[must_use]
pub fn level_graph(sim: &Simulation, s: u32) -> WeightedGraph {
    let mut g = WeightedGraph::new(sim.node_count());
    for e in sim.level_edges(s) {
        let kappa = sim
            .effective_kappa(e)
            .expect("level edge present at both endpoints");
        g.add_edge(e, kappa);
    }
    g
}

/// The current fully-inserted graph (`E_s` for `s → ∞`), weighted by `κ` —
/// the graph `G_∞(t)` of Corollary 5.26.
#[must_use]
pub fn full_level_graph(sim: &Simulation) -> WeightedGraph {
    level_graph(sim, u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> WeightedGraph {
        // 0 -1- 1 -1- 3, 0 -3- 2 -3- 3
        let mut g = WeightedGraph::new(4);
        g.add_edge(EdgeKey::new(NodeId(0), NodeId(1)), 1.0);
        g.add_edge(EdgeKey::new(NodeId(1), NodeId(3)), 1.0);
        g.add_edge(EdgeKey::new(NodeId(0), NodeId(2)), 3.0);
        g.add_edge(EdgeKey::new(NodeId(2), NodeId(3)), 3.0);
        g
    }

    #[test]
    fn dijkstra_picks_short_route() {
        let g = diamond();
        let d = g.distances_from(NodeId(0));
        assert_eq!(d[3], 2.0);
        assert_eq!(d[2], 3.0);
        assert_eq!(d[0], 0.0);
    }

    #[test]
    fn all_pairs_is_symmetric() {
        let m = diamond().all_pairs();
        for u in 0..4u32 {
            for v in 0..4u32 {
                assert_eq!(m.get(NodeId(u), NodeId(v)), m.get(NodeId(v), NodeId(u)));
            }
        }
        assert_eq!(m.diameter(), Some(4.0)); // 2 -> 1 via 0? 2-0-1 = 4
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(EdgeKey::new(NodeId(0), NodeId(1)), 1.0);
        let m = g.all_pairs();
        assert!(m.get(NodeId(0), NodeId(2)).is_infinite());
        assert_eq!(m.diameter(), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_weight() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(EdgeKey::new(NodeId(0), NodeId(1)), 0.0);
    }
}
