//! The weighted skew potentials of Definitions 5.11 and 5.12.
//!
//! For a level `s` and the κ-weighted level graph:
//!
//! * `Ξ^s_u(t) = max_p { L_u − L_v − s·κ_p }` over level-s paths
//!   `p = (u, …, v)` — how far *ahead* `u` is of anyone, discounted by
//!   `s·κ` per unit of path weight;
//! * `Ψ^s_u(t) = max_p { L_v − L_u − (s+½)·κ_p }` — how far *behind* `u`
//!   is, discounted by `(s+½)·κ`.
//!
//! Maximizing over paths reduces to minimizing `κ_p`, so both potentials
//! are computed from the all-pairs shortest-path matrix of the level graph.

use gcs_core::Simulation;
use gcs_net::NodeId;

use crate::paths::{level_graph, DistanceMatrix};

/// `Ξ^s` and `Ψ^s` for every node at one instant.
#[derive(Debug, Clone)]
pub struct Potentials {
    /// The level these potentials were computed for.
    pub level: u32,
    /// `Ξ^s_u` per node.
    pub xi: Vec<f64>,
    /// `Ψ^s_u` per node.
    pub psi: Vec<f64>,
}

impl Potentials {
    /// The network-wide `Ξ^s = max_u Ξ^s_u`.
    #[must_use]
    pub fn xi_max(&self) -> f64 {
        self.xi.iter().copied().fold(0.0, f64::max)
    }

    /// The network-wide `Ψ^s = max_u Ψ^s_u`.
    #[must_use]
    pub fn psi_max(&self) -> f64 {
        self.psi.iter().copied().fold(0.0, f64::max)
    }
}

/// Computes both potentials for level `s` from logical clock values and the
/// level graph's distance matrix.
///
/// Trivial paths (`p = (u)`, weight 0) contribute `ξ = ψ = 0`, so the
/// potentials are never negative.
#[must_use]
pub fn potentials_from(logical: &[f64], dist: &DistanceMatrix, s: u32) -> Potentials {
    let n = logical.len();
    assert_eq!(n, dist.node_count(), "clock/distance dimension mismatch");
    let s_f = f64::from(s);
    let mut xi = vec![0.0f64; n];
    let mut psi = vec![0.0f64; n];
    for u in 0..n {
        for v in 0..n {
            let d = dist.get(NodeId::from(u), NodeId::from(v));
            if !d.is_finite() {
                continue;
            }
            let xi_val = logical[u] - logical[v] - s_f * d;
            let psi_val = logical[v] - logical[u] - (s_f + 0.5) * d;
            xi[u] = xi[u].max(xi_val);
            psi[u] = psi[u].max(psi_val);
        }
    }
    Potentials { level: s, xi, psi }
}

/// Convenience wrapper: potentials of a running simulation at level `s`.
#[must_use]
pub fn potentials(sim: &Simulation, s: u32) -> Potentials {
    let logical: Vec<f64> = (0..sim.node_count())
        .map(|u| sim.node(NodeId::from(u)).logical())
        .collect();
    let dist = level_graph(sim, s).all_pairs();
    potentials_from(&logical, &dist, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::WeightedGraph;
    use gcs_net::EdgeKey;

    fn line_dist(weights: &[f64]) -> DistanceMatrix {
        let n = weights.len() + 1;
        let mut g = WeightedGraph::new(n);
        for (i, &w) in weights.iter().enumerate() {
            g.add_edge(EdgeKey::new(NodeId::from(i), NodeId::from(i + 1)), w);
        }
        g.all_pairs()
    }

    #[test]
    fn potentials_zero_when_synchronized() {
        let dist = line_dist(&[1.0, 1.0]);
        let p = potentials_from(&[5.0, 5.0, 5.0], &dist, 1);
        assert_eq!(p.xi_max(), 0.0);
        assert_eq!(p.psi_max(), 0.0);
    }

    #[test]
    fn xi_measures_lead_discounted_by_path_weight() {
        // Node 0 is 3 ahead of node 1 across an edge of weight 1 at level 1:
        // xi_0 = 3 - 1*1 = 2.
        let dist = line_dist(&[1.0]);
        let p = potentials_from(&[8.0, 5.0], &dist, 1);
        assert!((p.xi[0] - 2.0).abs() < 1e-12);
        assert_eq!(p.xi[1], 0.0);
        // psi_1 = L_0 - L_1 - 1.5*1 = 1.5 (node 1 is behind).
        assert!((p.psi[1] - 1.5).abs() < 1e-12);
        assert_eq!(p.psi[0], 0.0);
    }

    #[test]
    fn higher_levels_discount_more() {
        let dist = line_dist(&[1.0, 1.0]);
        let clocks = [6.0, 3.0, 0.0];
        let p1 = potentials_from(&clocks, &dist, 1);
        let p3 = potentials_from(&clocks, &dist, 3);
        assert!(p3.xi_max() < p1.xi_max());
        assert!(p3.psi_max() < p1.psi_max());
    }

    #[test]
    fn disconnected_pairs_do_not_contribute() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(EdgeKey::new(NodeId(0), NodeId(1)), 1.0);
        let dist = g.all_pairs();
        // Node 2 is wildly off but unreachable: potentials ignore it.
        let p = potentials_from(&[0.0, 0.0, 1000.0], &dist, 1);
        assert_eq!(p.xi_max(), 0.0);
        assert_eq!(p.psi_max(), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let dist = line_dist(&[1.0]);
        let _ = potentials_from(&[0.0, 0.0, 0.0], &dist, 1);
    }
}
