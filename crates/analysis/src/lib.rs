//! Measurement and verification utilities for `gradient-clock-sync`.
//!
//! Everything the experiments and tests need to *judge* a run:
//!
//! * [`skew`] — global/local skew and skew-vs-distance profiles,
//! * [`paths`] — shortest κ-weighted paths over the level graphs `E_s(t)`
//!   (Definition 5.8),
//! * [`potentials`] — the weighted skew potentials `Ξ` and `Ψ`
//!   (Definitions 5.11/5.12),
//! * [`legality`] — the (C, s)-legality checker (Definition 5.13) against
//!   the stabilized gradient sequences of Theorem 5.22, plus the
//!   closed-form gradient bound,
//! * [`oracle`] — the conformance oracle: the global-skew envelope
//!   (Theorem 5.6 with self-stabilization and partition allowances), the
//!   pairwise Theorem 5.22 gradient bound per hop class, and the
//!   weak-edge legality bound, checked per sampled snapshot against the
//!   realized fault/insertion log,
//! * [`report`] — plain-text tables and CSV output for the experiment
//!   harness,
//! * [`stats`] — small summary-statistics helpers,
//! * [`ensemble`] — multi-seed aggregation ([`EnsembleStats`]),
//! * [`parallel`] — scoped-thread fan-out for independent jobs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod ensemble;
pub mod legality;
pub mod oracle;
pub mod parallel;
pub mod paths;
pub mod potentials;
pub mod report;
pub mod skew;
pub mod stats;

pub use ensemble::EnsembleStats;
pub use legality::{gradient_bound, GradientChecker, LegalityReport, LevelReport};
pub use oracle::{
    BoundCheck, ConformanceChecker, ConformanceReport, HopClass, OracleConfig, OracleSampling,
};
pub use parallel::{parallel_map, parallel_map_progress};
pub use report::Table;
pub use skew::{
    kappa_diameter, local_skew, local_skew_with, skew_profile, skew_profiles,
    weighted_skew_profile, SkewProfiles,
};
