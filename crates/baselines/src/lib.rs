//! Baseline clock synchronization policies.
//!
//! The paper's related work defines the landscape `A_OPT` is measured
//! against; this crate re-implements the two classical points on it as
//! [`ModePolicy`] implementations over the same node substrate, so that
//! comparisons isolate the decision rule from everything else:
//!
//! * [`MaxOnlyPolicy`] — the Srikanth–Toueg-style *max algorithm* \[24\]:
//!   chase the largest clock in the network, ignore neighbours entirely.
//!   Asymptotically optimal global skew, but neighbours can be Θ(D) apart
//!   (§2, "a crucial shortcoming").
//! * [`SingleLevelPolicy`] — the *blocking* algorithm of Kuhn, Locher and
//!   Oshman (SPAA 2009, \[11\] in the paper): a single threshold `B`
//!   replaces `A_OPT`'s level hierarchy. A node runs fast when some
//!   neighbour is ≥ `B` ahead and none is ≥ `B` behind, and slow
//!   symmetrically (with the same ½-offset and slack construction as
//!   `A_OPT`'s triggers, so the two conditions are disjoint). With
//!   `B = Θ(√(ρ·G))` this yields the `O(√(ρD))` local skew of \[17, 18\];
//!   experiment E3 sweeps it against `A_OPT`'s `O(log D)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gcs_core::{Mode, ModePolicy, NodeView};

/// The max-flood baseline: fast whenever the node is detectably behind the
/// network maximum, slow otherwise. Neighbour estimates are ignored.
///
/// # Example
///
/// ```
/// use gcs_baselines::MaxOnlyPolicy;
/// use gcs_core::{Params, SimBuilder};
/// use gcs_net::Topology;
///
/// let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
/// let mut sim = SimBuilder::new(params)
///     .topology(Topology::line(4))
///     .policy(Box::new(MaxOnlyPolicy))
///     .build()
///     .unwrap();
/// sim.run_until_secs(5.0);
/// assert_eq!(sim.policy_name(), "max-only");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxOnlyPolicy;

impl ModePolicy for MaxOnlyPolicy {
    fn decide(&self, view: &NodeView<'_>) -> Mode {
        if view.logical <= view.max_estimate - view.iota {
            Mode::Fast
        } else if view.logical >= view.max_estimate {
            Mode::Slow
        } else {
            view.current_mode
        }
    }

    fn name(&self) -> &'static str {
        "max-only"
    }
}

/// The single-threshold blocking baseline of \[11\]: `A_OPT`'s trigger pair
/// restricted to one level with threshold `B` instead of `s·κ`.
///
/// Fast when some neighbour is ≥ `B − ε` ahead (by estimate) and no
/// neighbour is more than `B + ε` behind; slow when some neighbour is
/// ≥ `1.5·B − ε` behind and none is more than `1.5·B + ε` ahead. In the
/// gap, fall back to the max-estimate rule, exactly like Listing 3.
///
/// Only neighbours whose edges are inserted at level ≥ 1 are considered,
/// so newly appeared edges are still brought in gently by the underlying
/// handshake.
#[derive(Debug, Clone, Copy)]
pub struct SingleLevelPolicy {
    threshold: f64,
}

impl SingleLevelPolicy {
    /// Creates the policy with blocking threshold `B` (logical-clock
    /// units).
    ///
    /// # Panics
    ///
    /// Panics if `b` is not finite and positive.
    #[must_use]
    pub fn new(b: f64) -> Self {
        assert!(b.is_finite() && b > 0.0, "threshold must be positive");
        SingleLevelPolicy { threshold: b }
    }

    /// The `Θ(√(ρ·G))`-optimal threshold of \[11\]/\[17\] for a network whose
    /// global skew is bounded by `g`: `B = √(ρ·g/µ)` clamped below by
    /// `floor` (a `κ`-scale quantity — `B` may never be finer than the
    /// estimate uncertainty allows).
    #[must_use]
    pub fn sqrt_threshold(rho: f64, mu: f64, g: f64, floor: f64) -> f64 {
        (rho * g / mu).sqrt().max(floor)
    }

    /// The configured threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl ModePolicy for SingleLevelPolicy {
    fn decide(&self, view: &NodeView<'_>) -> Mode {
        let b = self.threshold;
        let mut fast_exists = false;
        let mut fast_blocked = false;
        let mut slow_exists = false;
        let mut slow_blocked = false;
        for n in view.neighbors {
            if !n.level.includes(1) {
                continue;
            }
            let Some(est) = n.estimate else {
                // Unknown neighbour state blocks both universal clauses.
                fast_blocked = true;
                slow_blocked = true;
                continue;
            };
            let ahead = est - view.logical;
            let behind = view.logical - est;
            if ahead >= b - n.epsilon {
                fast_exists = true;
            }
            if behind > b + 2.0 * view.mu * n.tau + n.epsilon {
                fast_blocked = true;
            }
            if behind >= 1.5 * b - n.delta - n.epsilon {
                slow_exists = true;
            }
            if ahead > 1.5 * b + n.delta + n.epsilon + view.mu * (1.0 + view.rho) * n.tau {
                slow_blocked = true;
            }
        }
        if slow_exists && !slow_blocked {
            Mode::Slow
        } else if fast_exists && !fast_blocked {
            Mode::Fast
        } else if view.logical >= view.max_estimate {
            Mode::Slow
        } else if view.logical <= view.max_estimate - view.iota {
            Mode::Fast
        } else {
            view.current_mode
        }
    }

    fn name(&self) -> &'static str {
        "single-level"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::edge_state::Level;
    use gcs_core::NeighborView;

    fn neighbor(est: f64) -> NeighborView {
        NeighborView {
            estimate: Some(est),
            kappa: 1.0,
            epsilon: 0.05,
            tau: 0.01,
            delta: 0.1,
            level: Level::Infinite,
        }
    }

    fn view<'a>(logical: f64, m: f64, ns: &'a [NeighborView]) -> NodeView<'a> {
        NodeView {
            logical,
            max_estimate: m,
            current_mode: Mode::Slow,
            iota: 0.01,
            mu: 0.1,
            rho: 0.01,
            neighbors: ns,
        }
    }

    #[test]
    fn max_only_ignores_neighbors() {
        // A neighbour trailing far behind does not slow the node down.
        let ns = [neighbor(0.0)];
        assert_eq!(MaxOnlyPolicy.decide(&view(10.0, 20.0, &ns)), Mode::Fast);
        assert_eq!(MaxOnlyPolicy.decide(&view(10.0, 10.0, &ns)), Mode::Slow);
        // Hysteresis region keeps the current mode.
        let mut v = view(10.0, 10.005, &ns);
        v.current_mode = Mode::Fast;
        assert_eq!(MaxOnlyPolicy.decide(&v), Mode::Fast);
    }

    #[test]
    fn single_level_fast_when_ahead_neighbor() {
        let p = SingleLevelPolicy::new(2.0);
        let ns = [neighbor(13.0)];
        assert_eq!(p.decide(&view(10.0, 13.0, &ns)), Mode::Fast);
    }

    #[test]
    fn single_level_laggard_blocks_neighbor_rule_but_not_max_rule() {
        let p = SingleLevelPolicy::new(2.0);
        let ns = [neighbor(14.0), neighbor(5.0)];
        // Laggard at 5.0 blocks the neighbour-based fast rule, and the
        // leader at 14.0 (ahead by 4 > 1.5B + slack) blocks the slow rule;
        // the decision falls through to the max-estimate rule
        // (L <= M - iota), hence fast. This is exactly why the single-level
        // algorithm cannot bound the skew on *paths*: the max rule keeps
        // dragging interior nodes upward.
        assert_eq!(p.decide(&view(10.0, 14.0, &ns)), Mode::Fast);
    }

    #[test]
    fn single_level_slow_when_neighbor_behind() {
        let p = SingleLevelPolicy::new(2.0);
        let ns = [neighbor(6.0)];
        assert_eq!(p.decide(&view(10.0, 10.0, &ns)), Mode::Slow);
    }

    #[test]
    fn single_level_is_deterministic() {
        use rand::Rng;
        let p = SingleLevelPolicy::new(1.0);
        let mut rng = gcs_sim::rng::stream(5, "sl-disjoint", 0);
        for _ in 0..2000 {
            let ns: Vec<NeighborView> = (0..rng.gen_range(1..4))
                .map(|_| neighbor(rng.gen_range(-5.0..5.0)))
                .collect();
            let l = rng.gen_range(-5.0..5.0);
            let v = view(l, 6.0, &ns);
            assert_eq!(p.decide(&v), p.decide(&v));
        }
    }

    #[test]
    fn single_level_ignores_uninserted_edges() {
        let p = SingleLevelPolicy::new(2.0);
        let mut n = neighbor(100.0);
        n.level = Level::Finite(0);
        let ns = [n];
        // The far-ahead neighbour is invisible; with L = M the node is slow.
        assert_eq!(p.decide(&view(10.0, 10.0, &ns)), Mode::Slow);
    }

    #[test]
    fn sqrt_threshold_scales() {
        let b1 = SingleLevelPolicy::sqrt_threshold(0.01, 0.1, 1.0, 0.01);
        let b4 = SingleLevelPolicy::sqrt_threshold(0.01, 0.1, 4.0, 0.01);
        assert!((b4 / b1 - 2.0).abs() < 1e-12, "sqrt scaling");
        // Floor applies.
        assert_eq!(SingleLevelPolicy::sqrt_threshold(1e-9, 0.1, 1e-6, 0.5), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_threshold() {
        let _ = SingleLevelPolicy::new(0.0);
    }
}
